package analysis

import (
	"strconv"
	"strings"
)

// Suppression directives:
//
//	//tlvet:ignore <analyzer>[, <analyzer>...] -- <reason>
//	//tlvet:ignore-file <analyzer>[, <analyzer>...] -- <reason>
//
// The line form covers findings on the directive's own line or the line
// directly below it (i.e. it is written on the offending line or the
// line above). The file form covers the named analyzers for the whole
// file; it wins over line granularity in the sense that no per-line
// directive is needed — or consulted — once a file-level directive
// names the analyzer. Several analyzers may share one directive,
// comma-separated.
//
// The reason is mandatory — suppressions must carry their justification
// in the source, not in review history — so a directive without one is
// itself reported, as is one naming an analyzer tlvet does not ship.
const (
	ignorePrefix     = "//tlvet:ignore"
	ignoreFilePrefix = "//tlvet:ignore-file"
)

// ignoreSet is the parsed suppression state for one package.
type ignoreSet struct {
	// byLine maps file -> line -> analyzer names suppressed there.
	byLine map[string]map[int]map[string]bool
	// byFile maps file -> analyzer names suppressed file-wide.
	byFile    map[string]map[string]bool
	malformed []Finding
}

func collectIgnores(pkg *Package, known map[string]bool) *ignoreSet {
	ig := &ignoreSet{
		byLine: make(map[string]map[int]map[string]bool),
		byFile: make(map[string]map[string]bool),
	}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				// The file prefix must be tested first: the line prefix is
				// a prefix of it, so the ignore-file form would otherwise
				// parse as a line ignore of the analyzer "-file ...".
				fileWide := false
				rest, ok := strings.CutPrefix(c.Text, ignoreFilePrefix)
				if ok {
					fileWide = true
				} else if rest, ok = strings.CutPrefix(c.Text, ignorePrefix); !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				names, reason, haveSep := strings.Cut(rest, "--")
				reason = strings.TrimSpace(reason)
				if !haveSep || reason == "" {
					ig.malformed = append(ig.malformed, Finding{
						Analyzer: "tlvet",
						Message:  `ignore directive needs a reason: //tlvet:ignore <analyzer> -- <reason>`,
						File:     pos.Filename, Line: pos.Line, Col: pos.Column,
					})
					continue
				}
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" || !known[name] {
						ig.malformed = append(ig.malformed, Finding{
							Analyzer: "tlvet",
							Message:  "ignore directive names unknown analyzer " + strconv.Quote(name),
							File:     pos.Filename, Line: pos.Line, Col: pos.Column,
						})
						continue
					}
					if fileWide {
						if ig.byFile[pos.Filename] == nil {
							ig.byFile[pos.Filename] = make(map[string]bool)
						}
						ig.byFile[pos.Filename][name] = true
						continue
					}
					lines := ig.byLine[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						ig.byLine[pos.Filename] = lines
					}
					if lines[pos.Line] == nil {
						lines[pos.Line] = make(map[string]bool)
					}
					lines[pos.Line][name] = true
				}
			}
		}
	}
	return ig
}

// suppresses reports whether f is covered by a file-level directive, or
// by a line directive on f's line or the line above it.
func (ig *ignoreSet) suppresses(f Finding) bool {
	if ig.byFile[f.File][f.Analyzer] {
		return true
	}
	lines := ig.byLine[f.File]
	if lines == nil {
		return false
	}
	return lines[f.Line][f.Analyzer] || lines[f.Line-1][f.Analyzer]
}
