package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and typechecked package, analyzer-ready.
// Test files (_test.go) are excluded: the analyzers enforce production
// invariants, and test code routinely compares floats exactly or drops
// errors on purpose.
type Package struct {
	Path  string // import path, e.g. repro/internal/gp
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Deps holds the module-internal packages loaded to satisfy this
	// package's imports (transitively). LoadModule leaves it empty —
	// every module package is already a sibling — but LoadDir fills it
	// so BuildModule can summarize fixture dependencies and
	// cross-package facts resolve in golden tests.
	Deps []*Package
}

// loader typechecks module packages from source, resolving standard
// library imports through the gc export-data importer (compiled export
// data; loading net/http this way takes ~200ms versus seconds for the
// source importer) and module-internal imports recursively through
// itself.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "gc", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) loadPath(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	return l.loadDir(filepath.Join(l.modRoot, filepath.FromSlash(rel)), path)
}

// loadDir parses and typechecks the package in dir, registering it
// under importPath. importPath need not correspond to dir's real
// location: golden-file tests load testdata directories under fake
// module-internal paths so path-scoped analyzers treat them as the
// packages they impersonate.
func (l *loader) loadDir(dir, importPath string) (*Package, error) {
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no non-test Go files", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// goSources lists dir's buildable non-test Go files, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s/go.mod: no module directive", root)
}

// LoadModule loads every package under the module rooted at or above
// dir, in deterministic import-path order. Directories named testdata
// or vendor, and hidden or underscore-prefixed directories, are
// skipped.
func LoadModule(dir string) ([]*Package, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)

	var paths []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		srcs, err := goSources(p)
		if err != nil {
			return err
		}
		if len(srcs) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, modPath)
		} else {
			paths = append(paths, modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)

	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.loadPath(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the single package in dir under the given import path,
// resolving its module-internal imports against the enclosing module.
// It exists for golden-file tests: a testdata package can impersonate
// a real package path (so path-scoped analyzers fire) without
// colliding with the real package, because each LoadDir call uses a
// fresh loader.
func LoadDir(dir, importPath string) (*Package, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)
	pkg, err := l.loadDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	for path, dep := range l.pkgs {
		if path != importPath {
			pkg.Deps = append(pkg.Deps, dep)
		}
	}
	return pkg, nil
}
