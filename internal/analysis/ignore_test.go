package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseIgnoreFixture builds the minimal Package collectIgnores needs (a
// parsed file with comments) from source text.
func parseIgnoreFixture(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "repro/internal/fix", Fset: fset, Files: []*ast.File{f}}
}

var ignoreKnown = map[string]bool{"wallclock": true, "maprange": true, "lockguard": true}

func finding(analyzer string, line int) Finding {
	return Finding{Analyzer: analyzer, File: "fix.go", Line: line}
}

func TestIgnoreMultipleAnalyzersOneLine(t *testing.T) {
	pkg := parseIgnoreFixture(t, `package fix

func f() {
	//tlvet:ignore wallclock, maprange -- one telemetry read feeding one sorted emit
	_ = 0
}
`)
	ig := collectIgnores(pkg, ignoreKnown)
	if len(ig.malformed) != 0 {
		t.Fatalf("unexpected malformed findings: %v", ig.malformed)
	}
	// The directive is on line 4 and covers line 5 (the line below).
	for _, name := range []string{"wallclock", "maprange"} {
		if !ig.suppresses(finding(name, 5)) {
			t.Errorf("%s not suppressed on the directive's next line", name)
		}
	}
	if ig.suppresses(finding("lockguard", 5)) {
		t.Error("lockguard suppressed without being named")
	}
	if ig.suppresses(finding("wallclock", 7)) {
		t.Error("suppression leaked past the directive's line span")
	}
}

func TestIgnoreUnknownAnalyzer(t *testing.T) {
	pkg := parseIgnoreFixture(t, `package fix

//tlvet:ignore wallclock, nosuchcheck -- reason text
var x = 0
`)
	ig := collectIgnores(pkg, ignoreKnown)
	if len(ig.malformed) != 1 {
		t.Fatalf("got %d malformed findings, want 1: %v", len(ig.malformed), ig.malformed)
	}
	if !strings.Contains(ig.malformed[0].Message, `unknown analyzer "nosuchcheck"`) {
		t.Errorf("malformed message = %q, want it to name nosuchcheck", ig.malformed[0].Message)
	}
	// The known half of the list still takes effect.
	if !ig.suppresses(finding("wallclock", 4)) {
		t.Error("valid analyzer in a partly-bad list not suppressed")
	}
}

func TestIgnoreMissingReason(t *testing.T) {
	for _, src := range []string{
		"package fix\n\n//tlvet:ignore wallclock\nvar x = 0\n",
		"package fix\n\n//tlvet:ignore wallclock --\nvar x = 0\n",
		"package fix\n\n//tlvet:ignore wallclock --   \nvar x = 0\n",
	} {
		pkg := parseIgnoreFixture(t, src)
		ig := collectIgnores(pkg, ignoreKnown)
		if len(ig.malformed) != 1 {
			t.Fatalf("got %d malformed findings for %q, want 1", len(ig.malformed), src)
		}
		if !strings.Contains(ig.malformed[0].Message, "needs a reason") {
			t.Errorf("malformed message = %q, want reason complaint", ig.malformed[0].Message)
		}
		if ig.suppresses(finding("wallclock", 4)) {
			t.Error("reasonless directive must not suppress anything")
		}
	}
}

func TestIgnoreFileLevelVsLineLevel(t *testing.T) {
	pkg := parseIgnoreFixture(t, `package fix

//tlvet:ignore-file maprange -- fixture package: every range here is order-free

func f() {
	//tlvet:ignore wallclock -- one sanctioned telemetry read
	_ = 0
}

func g() {
	_ = 1
}
`)
	ig := collectIgnores(pkg, ignoreKnown)
	if len(ig.malformed) != 0 {
		t.Fatalf("unexpected malformed findings: %v", ig.malformed)
	}
	// File-level: maprange is suppressed on every line, including far
	// from the directive.
	for _, line := range []int{3, 7, 11} {
		if !ig.suppresses(finding("maprange", line)) {
			t.Errorf("file-level maprange suppression missing on line %d", line)
		}
	}
	// Line-level: wallclock is only covered adjacent to its directive.
	if !ig.suppresses(finding("wallclock", 7)) {
		t.Error("line-level wallclock suppression missing on its own line")
	}
	if ig.suppresses(finding("wallclock", 11)) {
		t.Error("line-level wallclock suppression must not act file-wide")
	}
	// The file-level directive must not widen to unnamed analyzers.
	if ig.suppresses(finding("lockguard", 7)) {
		t.Error("lockguard suppressed by directives that never name it")
	}
}

// TestIgnoreFilePrefixPrecedence guards the parse-order subtlety: the
// plain ignore prefix is a prefix of ignore-file, so the file form must
// not be misread as a line ignore of the analyzer "-file ...".
func TestIgnoreFilePrefixPrecedence(t *testing.T) {
	pkg := parseIgnoreFixture(t, `package fix

//tlvet:ignore-file wallclock -- whole file is a clock fixture
var x = 0
`)
	ig := collectIgnores(pkg, ignoreKnown)
	if len(ig.malformed) != 0 {
		t.Fatalf("ignore-file parsed as malformed line directive: %v", ig.malformed)
	}
	if !ig.suppresses(finding("wallclock", 42)) {
		t.Error("ignore-file directive did not register file-wide")
	}
}
