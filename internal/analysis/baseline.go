package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A baseline is the committed debt ledger for tlvet: findings recorded
// in it are suppressed (so a new analyzer can land before every
// pre-existing hit is fixed) and burned down over time. Two properties
// keep it honest:
//
//   - entries are keyed by (analyzer, file, message) with an occurrence
//     count, never by line number, so unrelated edits shifting code
//     down a file do not churn the ledger;
//   - an entry that no longer matches any finding is STALE, and
//     staleness is itself reported as a finding — the ledger can only
//     shrink in step with reality, never rot.

// BaselineSchema tags the on-disk format; a mismatched tag refuses to
// load rather than silently suppressing the wrong findings.
const BaselineSchema = "tlvet-baseline-v1"

// A BaselineEntry records one tolerated finding signature.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	// File is module-root-relative with forward slashes.
	File    string `json:"file"`
	Message string `json:"message"`
	// Count is how many identical findings the entry tolerates
	// (identical messages can legitimately recur in one file).
	Count int `json:"count"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// A Baseline is the parsed ledger.
type Baseline struct {
	Schema  string          `json:"schema"`
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, b.Schema, BaselineSchema)
	}
	return &b, nil
}

// NewBaseline builds the ledger that would suppress exactly the given
// findings, with files relativized against root and entries in
// deterministic order.
func NewBaseline(findings []Finding, root string) *Baseline {
	counts := make(map[BaselineEntry]int)
	for _, f := range findings {
		counts[BaselineEntry{Analyzer: f.Analyzer, File: relURI(root, f.File), Message: f.Message}]++
	}
	b := &Baseline{Schema: BaselineSchema, Entries: make([]BaselineEntry, 0, len(counts))}
	for e, n := range counts {
		e.Count = n
		b.Entries = append(b.Entries, e)
	}
	sort.Slice(b.Entries, func(i, j int) bool { return b.Entries[i].key() < b.Entries[j].key() })
	return b
}

// Write renders the ledger as indented JSON to path (atomically enough
// for a source tree: truncate-and-write).
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply partitions findings against the ledger: kept are the findings
// the baseline does not cover (each entry absorbs up to Count matches),
// suppressed counts the absorbed ones, and stale lists entries that
// matched nothing at all — dead weight that the stale gate turns into
// its own findings.
func (b *Baseline) Apply(findings []Finding, root string) (kept []Finding, suppressed int, stale []BaselineEntry) {
	remaining := make(map[string]int, len(b.Entries))
	matched := make(map[string]bool, len(b.Entries))
	for _, e := range b.Entries {
		remaining[e.key()] += e.Count
	}
	for _, f := range findings {
		key := BaselineEntry{Analyzer: f.Analyzer, File: relURI(root, f.File), Message: f.Message}.key()
		if remaining[key] > 0 {
			remaining[key]--
			matched[key] = true
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	for _, e := range b.Entries {
		if !matched[e.key()] {
			stale = append(stale, e)
		}
	}
	return kept, suppressed, stale
}

// StaleFindings renders stale entries as driver findings so a rotted
// ledger fails the same gate as a real regression.
func StaleFindings(stale []BaselineEntry, baselinePath string) []Finding {
	var out []Finding
	for _, e := range stale {
		out = append(out, Finding{
			Analyzer: "baseline",
			Message: fmt.Sprintf("stale baseline entry: [%s] %q no longer fires in %s — remove it from %s",
				e.Analyzer, truncateMessage(e.Message), e.File, filepath.Base(baselinePath)),
			File: e.File,
			Line: 1,
		})
	}
	return out
}

func truncateMessage(msg string) string {
	const max = 80
	if len(msg) <= max {
		return msg
	}
	return strings.TrimSpace(msg[:max]) + "..."
}
