package analysis

import (
	"bytes"
	"encoding/json"
	"testing"
)

func sarifFindings() []Finding {
	return []Finding{
		{Analyzer: "wallclock", Message: "reads the clock", File: "/mod/internal/solver/s.go", Line: 10, Col: 7},
		{Analyzer: "maprange", Message: "unsorted emit", File: "/mod/internal/obs/o.go", Line: 3, Col: 1},
	}
}

func sarifAnalyzers() []*Analyzer {
	return []*Analyzer{
		{Name: "wallclock", Doc: "no clock reads on solve paths"},
		{Name: "maprange", Doc: "no unsorted map iteration into output"},
	}
}

func TestSARIFShape(t *testing.T) {
	log := BuildSARIF(sarifFindings(), sarifAnalyzers(), "/mod")
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "tlvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}

	// Every result's ruleIndex must point at the rule with its ruleId —
	// the invariant sarifcheck (and real SARIF viewers) rely on.
	for _, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Fatalf("ruleIndex %d out of range", r.RuleIndex)
		}
		if got := run.Tool.Driver.Rules[r.RuleIndex].ID; got != r.RuleID {
			t.Errorf("ruleIndex %d resolves to %q, want %q", r.RuleIndex, got, r.RuleID)
		}
	}

	// URIs are root-relative, slash-separated.
	uri := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if uri != "internal/solver/s.go" {
		t.Errorf("uri = %q, want internal/solver/s.go", uri)
	}
	region := run.Results[0].Locations[0].PhysicalLocation.Region
	if region.StartLine != 10 || region.StartColumn != 7 {
		t.Errorf("region = %+v, want 10:7", region)
	}
}

// TestSARIFSyntheticRule covers driver findings (ignore validation,
// baseline staleness) whose analyzer is not in the rule table up front.
func TestSARIFSyntheticRule(t *testing.T) {
	findings := []Finding{{Analyzer: "tlvet", Message: "bad directive", File: "/mod/x.go", Line: 1}}
	log := BuildSARIF(findings, sarifAnalyzers(), "/mod")
	run := log.Runs[0]
	r := run.Results[0]
	if run.Tool.Driver.Rules[r.RuleIndex].ID != "tlvet" {
		t.Errorf("synthetic rule not appended: index %d -> %q", r.RuleIndex, run.Tool.Driver.Rules[r.RuleIndex].ID)
	}
}

func TestSARIFRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sarifFindings(), sarifAnalyzers(), "/mod"); err != nil {
		t.Fatal(err)
	}
	var log SARIFLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF does not re-parse: %v", err)
	}
	if len(log.Runs) != 1 || len(log.Runs[0].Results) != 2 {
		t.Errorf("round-trip lost structure: %+v", log)
	}
}

// TestSARIFEmpty: a clean module emits an empty (non-null) results
// array, which is what the check.sh smoke gate parses on every run.
func TestSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, sarifAnalyzers(), "/mod"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"results": []`)) {
		t.Errorf("empty run must serialize results as [], got:\n%s", buf.String())
	}
}
