package checks

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/obs/events"
)

// EventFields enforces the thistle-events-v1 schema at every Emit call
// site. The schema itself lives in events.Schema() — the same table
// cmd/tlreport validate checks recorded streams against — so the
// static and dynamic checks cannot drift apart.
//
// An Emit site (any method named Emit with signature
// (string, map[string]any)) must:
//
//   - name its event type with an Ev* constant whose value is a schema
//     key, never a bare string literal;
//   - when the fields argument is a map literal, use only keys the
//     schema declares for that event, with statically compatible
//     value types, and include every required key.
//
// Sites that forward a variable event type (sink fan-out, the Obs.Emit
// implementation itself) and sites that build the field map
// incrementally are out of static reach and are skipped.
var EventFields = &analysis.Analyzer{
	Name: "eventfields",
	Doc:  "Emit calls must use Ev* constants and match the thistle-events-v1 field schema",
	Run:  runEventFields,
}

func runEventFields(pass *analysis.Pass) {
	schema := events.Schema()
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && isEmitCall(info, call) {
				checkEmit(pass, schema, call)
			}
			return true
		})
	}
}

// isEmitCall reports whether call invokes a method named Emit with
// signature (string, map[string]any) — the shape shared by
// obs.EventSink implementations and obs.Obs.Emit.
func isEmitCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" || len(call.Args) != 2 {
		return false
	}
	// Require a genuine method selection (the recorded signature has
	// its receiver stripped, so check Selections, not Recv).
	if s := info.Selections[sel]; s == nil || s.Kind() != types.MethodVal {
		return false
	}
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Variadic() {
		return false
	}
	if b := underBasic(sig.Params().At(0).Type()); b == nil || b.Kind() != types.String {
		return false
	}
	m, ok := sig.Params().At(1).Type().Underlying().(*types.Map)
	if !ok {
		return false
	}
	if b := underBasic(m.Key()); b == nil || b.Kind() != types.String {
		return false
	}
	iface, ok := m.Elem().Underlying().(*types.Interface)
	return ok && iface.Empty()
}

func checkEmit(pass *analysis.Pass, schema map[string]events.EventSpec, call *ast.CallExpr) {
	info := pass.TypesInfo()
	typArg := ast.Unparen(call.Args[0])

	if _, isLit := typArg.(*ast.BasicLit); isLit {
		pass.Reportf(typArg.Pos(), "event type must be a named Ev* constant (see internal/obs/eventtypes.go), not a string literal")
		return
	}
	obj := constObj(info, typArg)
	if obj == nil {
		// A variable event type is a forwarding site (multi-sink,
		// Obs.Emit itself) — out of static reach.
		return
	}
	if !strings.HasPrefix(obj.Name(), "Ev") {
		pass.Reportf(typArg.Pos(), "event type constant %s is not one of the Ev* constants declared in internal/obs/eventtypes.go", obj.Name())
		return
	}
	evName := constant.StringVal(obj.Val())
	spec, known := schema[evName]
	if !known {
		pass.Reportf(typArg.Pos(), "event type %q is not in the thistle-events-v1 schema (events.Schema)", evName)
		return
	}

	checkEmitFields(pass, spec, evName, call.Args[1])
}

func checkEmitFields(pass *analysis.Pass, spec events.EventSpec, evName string, fieldsArg ast.Expr) {
	info := pass.TypesInfo()
	fieldsArg = ast.Unparen(fieldsArg)

	if id, ok := fieldsArg.(*ast.Ident); ok && id.Name == "nil" {
		reportMissing(pass, spec, evName, fieldsArg.Pos(), nil)
		return
	}
	lit, ok := fieldsArg.(*ast.CompositeLit)
	if !ok {
		return // map built incrementally — out of static reach
	}
	seen := make(map[string]bool)
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyTV := info.Types[kv.Key]
		if keyTV.Value == nil || keyTV.Value.Kind() != constant.String {
			continue // computed key — out of static reach
		}
		key := constant.StringVal(keyTV.Value)
		seen[key] = true
		kind, declared := spec.Kind(key)
		if !declared {
			pass.Reportf(kv.Key.Pos(), "event %q has no field %q in the thistle-events-v1 schema", evName, key)
			continue
		}
		if vt := info.Types[kv.Value].Type; !staticKindOK(vt, kind) {
			pass.Reportf(kv.Value.Pos(), "field %q of event %q must be %s-kinded, got %s", key, evName, kind, vt)
		}
	}
	reportMissing(pass, spec, evName, lit.Pos(), seen)
}

func reportMissing(pass *analysis.Pass, spec events.EventSpec, evName string, pos token.Pos, seen map[string]bool) {
	var missing []string
	for field := range spec.Required {
		if !seen[field] {
			missing = append(missing, field)
		}
	}
	sort.Strings(missing)
	for _, field := range missing {
		pass.Reportf(pos, "event %q is missing required field %q", evName, field)
	}
}

// constObj resolves e to the named constant it denotes, or nil.
func constObj(info *types.Info, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := info.Uses[id].(*types.Const)
	if c == nil || c.Val() == nil || c.Val().Kind() != constant.String {
		return nil
	}
	return c
}

// staticKindOK reports whether a value of Go type t can satisfy the
// schema kind. Interfaces and non-basic types are not checked
// statically (the dynamic validator covers them).
func staticKindOK(t types.Type, kind events.FieldKind) bool {
	if kind == events.KindAny {
		return true
	}
	b := underBasic(t)
	if b == nil {
		// Interfaces, structs, slices: not decidable statically —
		// leave those to the dynamic validator.
		return true
	}
	switch kind {
	case events.KindString:
		return b.Info()&types.IsString != 0
	case events.KindBool:
		return b.Info()&types.IsBoolean != 0
	case events.KindInt:
		return b.Info()&types.IsInteger != 0
	case events.KindFloat:
		// JSON does not distinguish 3 from 3.0: ints are valid floats.
		return b.Info()&(types.IsFloat|types.IsInteger) != 0
	default:
		return true
	}
}
