package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// NilRecv enforces the nil-safety contract of the observability
// layer: the documented API promise is that a nil *Obs (and every
// handle it vends) is a valid no-op, so instrumented code never has to
// guard call sites. That only holds if every exported pointer-receiver
// method on these types refuses to dereference a nil receiver.
//
// The analyzer flags direct receiver dereferences (field access,
// *recv) that are not dominated by a nil test: either a leading
// terminating `if recv == nil { return }` guard, a `recv != nil`
// condition on the enclosing if, or a short-circuit `recv != nil &&`
// / `recv == nil ||` earlier in the same expression. Method calls on
// the receiver are assumed nil-safe (they are themselves checked).
var NilRecv = &analysis.Analyzer{
	Name: "nilrecv",
	Doc:  "exported methods on nil-safe obs types must not dereference a nil receiver",
	Run:  runNilRecv,
}

// nilSafeTypes lists, per package, the types whose documented contract
// is "nil receiver is a no-op". Flags (obs/cli.go) is deliberately
// absent: it is constructed by value and makes no such promise.
var nilSafeTypes = map[string]map[string]bool{
	"repro/internal/obs": {
		"Obs": true, "Logger": true, "Tracer": true, "Span": true,
		"Counter": true, "Gauge": true, "Histogram": true, "Registry": true,
	},
	"repro/internal/obs/events": {
		"Emitter": true, "Recorder": true,
	},
}

func runNilRecv(pass *analysis.Pass) {
	guarded := nilSafeTypes[pass.Path()]
	if guarded == nil {
		return
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := fd.Recv.List[0]
			star, ok := recv.Type.(*ast.StarExpr)
			if !ok {
				continue // value receiver cannot be nil
			}
			base, ok := star.X.(*ast.Ident)
			if !ok || !guarded[base.Name] {
				continue
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				continue // receiver unnamed: nothing to dereference
			}
			recvObj := info.Defs[recv.Names[0]]
			if recvObj == nil {
				continue
			}
			checkNilSafety(pass, fd, recvObj)
		}
	}
}

// posRange is a half-open source region within which receiver
// dereferences are dominated by a nil test.
type posRange struct{ from, to token.Pos }

func checkNilSafety(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object) {
	info := pass.TypesInfo()
	var safe []posRange

	// A leading terminating `if recv == nil { return }` (possibly
	// after statements that do not touch the receiver) protects the
	// rest of the body.
	for _, stmt := range fd.Body.List {
		if ifs, ok := stmt.(*ast.IfStmt); ok &&
			ifs.Init == nil && ifs.Else == nil &&
			condImpliedByNil(info, ifs.Cond, recv) && terminates(ifs.Body) {
			safe = append(safe, posRange{ifs.End(), fd.Body.End()})
			break
		}
	}

	// Short-circuit and branch protection anywhere in the body.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			// recv != nil && X   /   recv == nil || X
			if n.Op == token.LAND && condRequiresNonNil(info, n.X, recv) ||
				n.Op == token.LOR && condImpliedByNil(info, n.X, recv) {
				safe = append(safe, posRange{n.Y.Pos(), n.Y.End()})
			}
		case *ast.IfStmt:
			if condRequiresNonNil(info, n.Cond, recv) {
				safe = append(safe, posRange{n.Body.Pos(), n.Body.End()})
			}
		}
		return true
	})

	inSafe := func(p token.Pos) bool {
		for _, r := range safe {
			if r.from <= p && p < r.to {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var x ast.Expr
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if sel := info.Selections[n]; sel == nil || sel.Kind() != types.FieldVal {
				return true // method call or qualified identifier
			}
			x = n.X
		case *ast.StarExpr:
			x = n.X
		default:
			return true
		}
		id, ok := ast.Unparen(x).(*ast.Ident)
		if !ok || info.Uses[id] != recv {
			return true
		}
		if !inSafe(id.Pos()) {
			pass.Reportf(id.Pos(),
				"%s dereferences receiver %s without a nil guard; %s is documented nil-safe — add `if %s == nil { return ... }` first",
				fd.Name.Name, id.Name, recvTypeName(fd), id.Name)
		}
		return true
	})
}

func recvTypeName(fd *ast.FuncDecl) string {
	if star, ok := fd.Recv.List[0].Type.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "*" + id.Name
		}
	}
	return "receiver type"
}

// terminates reports whether a guard body unconditionally leaves the
// function (return or panic as its final statement).
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// condImpliedByNil reports whether cond is true whenever recv is nil:
// `recv == nil`, or an || chain with such an operand.
func condImpliedByNil(info *types.Info, cond ast.Expr, recv types.Object) bool {
	switch cond := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch cond.Op {
		case token.EQL:
			return isNilCompare(info, cond, recv)
		case token.LOR:
			return condImpliedByNil(info, cond.X, recv) || condImpliedByNil(info, cond.Y, recv)
		case token.LAND:
			return condImpliedByNil(info, cond.X, recv) && condImpliedByNil(info, cond.Y, recv)
		}
	}
	return false
}

// condRequiresNonNil reports whether cond can only be true when recv
// is non-nil: `recv != nil`, or an && chain with such an operand.
func condRequiresNonNil(info *types.Info, cond ast.Expr, recv types.Object) bool {
	switch cond := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch cond.Op {
		case token.NEQ:
			return isNilCompare(info, cond, recv)
		case token.LAND:
			return condRequiresNonNil(info, cond.X, recv) || condRequiresNonNil(info, cond.Y, recv)
		case token.LOR:
			return condRequiresNonNil(info, cond.X, recv) && condRequiresNonNil(info, cond.Y, recv)
		}
	}
	return false
}

// isNilCompare reports whether bin compares recv against nil.
func isNilCompare(info *types.Info, bin *ast.BinaryExpr, recv types.Object) bool {
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil" && info.Types[id].IsNil()
	}
	return isRecv(bin.X) && isNil(bin.Y) || isNil(bin.X) && isRecv(bin.Y)
}
