// Package droppederr is a tlvet golden-file fixture.
package droppederr

import (
	"bytes"
	"errors"
	"fmt"
	"hash"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func countAndFail() (int, error) { return 0, errors.New("boom") }

func pure() int { return 1 }

func body(f *os.File, sb *strings.Builder, buf *bytes.Buffer) {
	mayFail()      // want `result of mayFail includes an error that is silently dropped`
	countAndFail() // want `result of countAndFail includes an error that is silently dropped`
	f.Sync()       // want `result of Sync includes an error that is silently dropped`

	// Handled or explicitly discarded errors are fine.
	if err := mayFail(); err != nil {
		_ = err
	}
	_ = mayFail()
	_, _ = countAndFail()
	pure() // no error result

	// Allowlist: best-effort console output and never-failing writers.
	fmt.Println("hello")
	fmt.Fprintf(os.Stderr, "hello\n")
	sb.WriteString("x")
	buf.WriteByte('x')

	// Calls through function values are still flagged.
	var fn func() error
	fn() // want `result of call includes an error that is silently dropped`

	// defer and go statements are out of scope in this version.
	defer f.Close()
	go mayFail()
}

// hash.Hash.Write is documented to never return an error.
func digest(h hash.Hash) {
	h.Write([]byte("payload"))
}
