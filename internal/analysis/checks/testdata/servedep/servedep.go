// Package servedep is a tlvet golden-file fixture; the golden test
// loads it under a fake import path inside repro/internal/serve so the
// layering analyzer applies the service rule. The optimizer stack the
// service fronts (core, pipeline, workloads, ...) is allowed; the CLI
// flag runtime sits above the service layer, so importing cliutil is an
// upward dependency.
package servedep

import (
	"repro/internal/cliutil" // want `serve imports repro/internal/cliutil, which is above it in the layering`
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

var (
	_ = cliutil.VersionString
	_ = core.ErrNoDesign
	_ = pipeline.ErrNoDesign
	_ = workloads.ByName
)
