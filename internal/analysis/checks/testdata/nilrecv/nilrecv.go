// Package obs is a tlvet golden-file fixture; the golden test loads
// it under the fake import path repro/internal/obs so the nilrecv
// type table applies. The Logger declared here impersonates the real
// obs.Logger.
package obs

type Logger struct {
	min int
	n   int
}

// Enabled stands in for a nil-safe helper method.
func (l *Logger) Enabled() bool {
	return l != nil && l.min > 0 // short-circuit guard protects the deref
}

func (l *Logger) Guarded() {
	if l == nil {
		return
	}
	l.n++
}

func (l *Logger) GuardPanics() {
	if l == nil {
		panic("nil Logger")
	}
	l.n++
}

func (l *Logger) GuardAfterDecl() int {
	var out int
	if l == nil {
		return out
	}
	return l.n
}

func (l *Logger) OrGuard() {
	if l == nil || l.n == 0 { // the == nil operand protects the rest of the condition
		return
	}
	l.n++
}

func (l *Logger) IfBranch() {
	if l != nil {
		l.n++
	}
}

func (l *Logger) MethodCallsOnly() {
	// Method calls on the receiver are assumed nil-safe; no guard
	// needed until a field is touched.
	if !l.Enabled() {
		return
	}
	if l == nil {
		return
	}
	l.n++
}

func (l *Logger) Bad() {
	l.n++ // want `Bad dereferences receiver l without a nil guard`
}

func (l *Logger) LateGuard() {
	l.n++ // want `LateGuard dereferences receiver l without a nil guard`
	if l == nil {
		return
	}
	l.min++
}

func (l *Logger) ElseBad() int {
	if l != nil {
		return l.n
	} else {
		return l.min // want `ElseBad dereferences receiver l without a nil guard`
	}
}

func (l *Logger) StarDeref() Logger {
	return *l // want `StarDeref dereferences receiver l without a nil guard`
}

func (l *Logger) NonTerminatingGuard() {
	if l == nil {
		println("nil Logger") // guard falls through: the deref below still happens when l is nil
	}
	l.n++ // want `NonTerminatingGuard dereferences receiver l without a nil guard`
}

// unexported methods are internal plumbing, outside the documented
// nil-safety contract.
func (l *Logger) bad() { l.n++ }

// Value receivers cannot be nil.
func (l Logger) Count() int { return l.n }

// notNilSafe is not in the nil-safe table; its methods may assume a
// non-nil receiver.
type notNilSafe struct{ n int }

func (h *notNilSafe) Bump() { h.n++ }

// Anonymous receivers cannot be dereferenced.
func (*Logger) Version() int { return 1 }
