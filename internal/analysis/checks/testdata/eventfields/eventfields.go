// Package eventfields is a tlvet golden-file fixture. The // want
// comments are assertions consumed by golden_test.go.
package eventfields

import "repro/internal/obs"

type sink struct{}

func (sink) Emit(typ string, fields map[string]any) {}

// notEmit has the wrong arity and must not be treated as an Emit site.
type notEmit struct{}

func (notEmit) Emit(typ string) {}

const evLocal = "solve_end" // schema value but not an Ev* name

const EvMadeUp = "made_up_event" // Ev* name but not a schema value

func emits(n int) {
	var s sink
	var ne notEmit

	s.Emit(obs.EvSolveEnd, map[string]any{"status": "optimal", "newton": 3, "centerings": 1})
	s.Emit(obs.EvSolveEnd, map[string]any{"status": "optimal", "newton": 3, "centerings": 1, "objective": 1.5, "wall_us": 12})

	s.Emit("solve_end", nil) // want `event type must be a named Ev\* constant`
	s.Emit(evLocal, nil)     // want `constant evLocal is not one of the Ev\* constants`
	s.Emit(EvMadeUp, nil)    // want `event type "made_up_event" is not in the thistle-events-v1 schema`

	s.Emit(obs.EvSolveEnd, map[string]any{"status": "optimal", "newton": 3}) // want `event "solve_end" is missing required field "centerings"`
	s.Emit(obs.EvCentering, nil)                                             // want `missing required field "gap"` `missing required field "newton"` `missing required field "step"`

	s.Emit(obs.EvSolveEnd, map[string]any{
		"status":     7,       // want `field "status" of event "solve_end" must be string-kinded, got .*int`
		"newton":     "seven", // want `field "newton" of event "solve_end" must be int-kinded, got .*string`
		"centerings": 1,
		"objective":  n,    // ints are acceptable floats
		"surprise":   true, // want `event "solve_end" has no field "surprise"`
	})

	// Forwarding sites and dynamically built maps are out of static
	// reach and must not be flagged.
	typ := "solve_end"
	s.Emit(typ, nil)
	fields := map[string]any{}
	fields["status"] = "optimal"
	s.Emit(obs.EvSolveEnd, fields)

	ne.Emit("anything")
}
