// Package posycoef is a tlvet golden-file fixture.
package posycoef

import (
	"repro/internal/expr"
	"repro/internal/gp"
)

const negCoeff = -2.5

func build() {
	vs := &expr.VarSet{}
	x := vs.NewVar("x")
	p := gp.New(vs)

	// Positive literals are the normal case.
	_ = expr.Mono(1, x)
	_ = expr.MonoPow(0.5, x, -2) // negative exponent is fine; only the coefficient is constrained
	_ = expr.Const(3)
	_ = expr.PolyConst(4)
	_ = expr.PolyConst(0) // documented: the empty posynomial
	_ = p.AddUpperBound("ub", x, 1024)

	_ = expr.Mono(-1, x)              // want `Mono coefficient must be positive`
	_ = expr.Mono(0, x)               // want `Mono coefficient must be positive`
	_ = expr.MonoPow(negCoeff, x, 2)  // want `MonoPow coefficient must be positive`
	_ = expr.Const(-3)                // want `Const coefficient must be positive`
	_ = expr.Const(0)                 // want `Const coefficient must be positive`
	_ = expr.PolyConst(-1)            // want `PolyConst coefficient must be positive`
	_ = p.AddUpperBound("ub2", x, -8) // want `AddUpperBound coefficient must be positive`
	_ = p.AddLowerBound("lb", x, 0)   // want `AddLowerBound coefficient must be positive`

	// Runtime values are out of static reach.
	c := -4.0
	_ = expr.Const(c)
	_ = expr.Const(-c)
}
