// Package serveimport is a tlvet golden-file fixture; the golden test
// loads it under a fake import path inside repro/internal/experiments,
// a library layer. The serve package is a leaf of the internal graph:
// only commands may import it, so a library dependency on it is an
// error regardless of direction.
package serveimport

import (
	"repro/internal/model"
	"repro/internal/serve" // want `only commands \(repro/cmd/\.\.\.\) may import it`
)

var (
	_ = model.MinEnergy
	_ = serve.New
)
