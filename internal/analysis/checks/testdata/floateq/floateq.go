// Package floateq is a tlvet golden-file fixture; the golden test
// loads it under a fake import path inside repro/internal/solver so
// the path-scoped analyzer fires.
package floateq

func compare(a, b float64, f32a, f32b float32, n int, xs []float64) bool {
	if a == b { // want `exact float == comparison`
		return true
	}
	if a != b { // want `exact float != comparison`
		return false
	}
	_ = f32a == f32b // want `exact float == comparison`

	// Comparisons against a constant zero are the zero-value sentinel
	// idiom (withDefaults style) and are exempt.
	_ = a == 0
	_ = 0.0 != b

	// Non-zero constants still compare inexactly after arithmetic.
	const half = 0.5
	_ = a == half // want `exact float == comparison`

	// Integer and structural comparisons are out of scope.
	_ = n == 0
	_ = len(xs) == n
	_ = a < b
	_ = a >= b
	return a+b == b+a // want `exact float == comparison`
}
