// The ctxprop fixture is loaded under its real module path (a repro/
// package, so the FContext-variant rule applies) and exercises both
// severances: minting a fresh root inside a ctx-receiving function, and
// calling the context-free variant of a function that has a Context
// sibling.
package ctxprop

import "context"

// Solve is the context-free variant of SolveContext.
func Solve(x int) int { return x }

// SolveContext is the propagating variant.
func SolveContext(ctx context.Context, x int) int {
	_ = ctx
	return x
}

// Plain has no Context sibling: dropping ctx to call it is fine.
func Plain(x int) int { return x }

func freshRoot(ctx context.Context) context.Context {
	return context.Background() // want `freshRoot receives a context but calls context\.Background`
}

func freshTodo(ctx context.Context, x int) int {
	return SolveContext(context.TODO(), x) // want `freshTodo receives a context but calls context\.TODO`
}

func dropsCtx(ctx context.Context, x int) int {
	return Solve(x) // want `dropsCtx receives a context but calls ctxprop\.Solve, dropping it; use ctxprop\.SolveContext\(ctx, \.\.\.\)`
}

// propagates is the correct shape.
func propagates(ctx context.Context, x int) int {
	return SolveContext(ctx, x)
}

// noVariant calls a function with no Context sibling: nothing to drop.
func noVariant(ctx context.Context, x int) int {
	_ = ctx
	return Plain(x)
}

// noCtxParam receives no context, so minting a root is its prerogative
// (main and tests do exactly this).
func noCtxParam(x int) int {
	return SolveContext(context.Background(), x)
}
