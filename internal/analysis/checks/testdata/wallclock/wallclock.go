// The wallclock fixture impersonates a solver subpackage (the golden
// test loads it under repro/internal/solver/testfixture), putting every
// function here in the solve-path scope.
package testfixture

import (
	"time"

	dep "repro/internal/analysis/checks/testdata/wallclockdep"
)

// Stage reads the clock directly on the solve path.
func Stage() float64 {
	t0 := time.Now() // want `Stage reads the wall clock \(time\.Now\) on the solve path`
	_ = t0
	return 1.0
}

// Elapsed depends on the clock through time.Since.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `Elapsed reads the wall clock \(time\.Since\)`
}

// Indirect reaches the clock through one out-of-scope hop; the finding
// carries the witness chain.
func Indirect() int64 {
	return dep.Stamp() // want `Indirect calls wallclockdep\.Stamp, which transitively reads the wall clock \(wallclockdep\.Stamp -> time\.Now\)`
}

// Deep reaches the clock through two hops.
func Deep() int64 {
	return dep.Wrapped() // want `Deep calls wallclockdep\.Wrapped, which transitively reads the wall clock \(wallclockdep\.Wrapped -> wallclockdep\.Stamp -> time\.Now\)`
}

// CleanCall calls a dependency that never touches the clock.
func CleanCall() int64 {
	return dep.Pure(21)
}

// Suppressed carries the sanctioned telemetry escape hatch.
func Suppressed() int64 {
	//tlvet:ignore wallclock -- telemetry only: feeds a histogram, never results
	return time.Now().UnixNano()
}

// Pure is a clock-free solve function: the common case.
func Pure(x float64) float64 {
	return 2 * x
}
