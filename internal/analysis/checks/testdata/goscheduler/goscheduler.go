// The goscheduler fixture impersonates a pipeline subpackage (loaded
// under repro/internal/pipeline/testfixture) so both halves of the rule
// are visible: Scheduler methods may spawn freely, everything else
// needs a WaitGroup scope or a reasoned suppression.
package testfixture

import "sync"

func work() {}

func unbounded() {
	go work() // want `unbounded launches a goroutine outside pipeline\.Scheduler and without a WaitGroup scope`
}

// fanOut is the structured shape: Add before the spawn, Wait on the
// same WaitGroup.
func fanOut(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// addAfterSpawn gets the ordering wrong: the Add must precede the go
// statement for the scope to count.
func addAfterSpawn() {
	var wg sync.WaitGroup
	go func() { wg.Done() }() // want `addAfterSpawn launches a goroutine`
	wg.Add(1)
	wg.Wait()
}

// mismatched Adds on one WaitGroup and Waits on another.
func mismatched(other *sync.WaitGroup) {
	var spawn sync.WaitGroup
	spawn.Add(1)
	go func() { spawn.Done() }() // want `mismatched launches a goroutine`
	other.Wait()
}

// Scheduler impersonates pipeline.Scheduler: its own methods are the
// sanctioned spawn point.
type Scheduler struct {
	jobs chan func()
}

func (s *Scheduler) spawnWorker() {
	go func() {
		for job := range s.jobs {
			job()
		}
	}()
}

// serviceLoop documents its lifecycle instead: suppressed.
func serviceLoop(done chan struct{}) {
	//tlvet:ignore goscheduler -- long-lived service loop; owned and joined by the Close path
	go func() {
		<-done
	}()
}

// Workspace impersonates the solver/linalg scratch arena: single-owner,
// so its methods may not spawn even with a WaitGroup scope.
type Workspace struct {
	buf []float64
}

func (ws *Workspace) fill() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `fill launches a goroutine inside the workspace pool`
		defer wg.Done()
		for i := range ws.buf {
			ws.buf[i] = 0
		}
	}()
	wg.Wait()
}

// getWS impersonates the run-context pool accessor: same strict rule by
// name, independent of receiver.
func getWS() *Workspace {
	ws := &Workspace{}
	go work() // want `getWS launches a goroutine inside the workspace pool`
	return ws
}

// reset is an ordinary Workspace method with no spawn: the common case.
func (ws *Workspace) reset() {
	for i := range ws.buf {
		ws.buf[i] = 0
	}
}
