// Package stagedep is a tlvet golden-file fixture; the golden test
// loads it under a fake import path inside repro/internal/pipeline so
// the path-scoped layering analyzer fires. Downward imports (obs and
// its subpackages, the modeling stack) are allowed; importing the core
// facade that wraps the pipeline is an upward dependency.
package stagedep

import (
	"repro/internal/core" // want `pipeline imports repro/internal/core, which is above it in the layering`
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/events"
)

var (
	_ = core.ErrNoDesign
	_ = model.MinEnergy
	_ = obs.Debug
	_ = events.SchemaVersion
)
