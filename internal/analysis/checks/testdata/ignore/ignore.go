// Package ignore is a tlvet golden-file fixture for the
// //tlvet:ignore directive: valid directives (with a reason) suppress
// findings on their own line or the line below; directives without a
// reason or naming an unknown analyzer are themselves findings, and
// suppress nothing.
package ignore

import "errors"

func mayFail() error { return errors.New("boom") }

func body() {
	mayFail() // want `result of mayFail includes an error that is silently dropped`

	mayFail() //tlvet:ignore droppederr -- fixture: suppressed on the same line

	//tlvet:ignore droppederr -- fixture: suppressed from the line above
	mayFail()

	//tlvet:ignore droppederr -- fixture: a directive reaches one line, not two

	mayFail() // want `result of mayFail includes an error that is silently dropped`

	mayFail() //tlvet:ignore droppederr want `ignore directive needs a reason` `result of mayFail includes an error`

	mayFail() //tlvet:ignore nosuchanalyzer -- fixture reason want `ignore directive names unknown analyzer "nosuchanalyzer"` `result of mayFail includes an error`
}
