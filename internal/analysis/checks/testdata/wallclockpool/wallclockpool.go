// The wallclockpool fixture impersonates a linalg subpackage (loaded
// under repro/internal/linalg/testfixture): the workspace refactor put
// the arena buffers on the solve path, so linalg is now in the
// wallclock scope and a clock read inside a Workspace method is a
// finding like any solver one.
package testfixture

import "time"

// Workspace impersonates the linalg scratch arena.
type Workspace struct {
	fact  []float64
	stamp int64
}

// SolveTo is the clock-free kernel shape: the common case.
func (ws *Workspace) SolveTo(dst, b []float64) {
	if cap(ws.fact) < len(b) {
		ws.fact = make([]float64, len(b))
	}
	copy(dst, b)
}

// Touch stamps the workspace with the wall clock: flagged, the arena is
// on the solve path.
func (ws *Workspace) Touch() {
	ws.stamp = time.Now().UnixNano() // want `Touch reads the wall clock \(time\.Now\) on the solve path`
}

// Timed suppresses with the sanctioned telemetry reason.
func (ws *Workspace) Timed() int64 {
	//tlvet:ignore wallclock -- telemetry only: feeds a histogram, never results
	return time.Now().UnixNano()
}
