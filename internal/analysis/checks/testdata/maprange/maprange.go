// The maprange fixture exercises the three sinks (Emit/Encode calls,
// fmt printing, unsorted slice appends) plus the sanctioned
// collect-then-sort and commutative-use shapes.
package maprange

import (
	"fmt"
	"sort"
)

type sink struct{}

func (sink) Emit(event string, args ...any) {}

type encoder struct{}

func (encoder) Encode(v any) error { return nil }

func emitOrder(m map[string]int, s sink) {
	for k, v := range m {
		s.Emit("sample", k, v) // want `emitOrder iterates a map and passes iteration-dependent values to Emit`
	}
}

func encodeOrder(m map[string]int, e encoder) {
	for k := range m {
		_ = e.Encode(k) // want `encodeOrder iterates a map and passes iteration-dependent values to Encode`
	}
}

func printOrder(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `printOrder prints values inside a map range via fmt\.Printf`
	}
}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appendNoSort appends map-iteration values to keys without a later sort`
	}
	return keys
}

// appendThenSort is the sanctioned idiom: collect, then sort before the
// slice escapes.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sumValues is commutative: iteration order cannot show in the result.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// loopLocal appends into a slice scoped to the loop body: per-key work,
// no cross-iteration order to leak.
func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// bareRange carries no per-iteration data at all.
func bareRange(m map[string]int, s sink) {
	for range m {
		s.Emit("tick")
	}
}

// sliceRange is not a map: ordered iteration is fine to print.
func sliceRange(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
