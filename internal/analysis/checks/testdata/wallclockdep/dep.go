// Package wallclockdep is a helper dependency for the wallclock golden
// fixture: it is imported by its real module path (so the loader
// records it as a dependency and the callgraph summarizes it) and sits
// outside both the solve-path scope and the obs/serve barrier, which
// makes it exactly the kind of package a clock read can hide in.
package wallclockdep

import "time"

// Stamp reads the wall clock directly: callers on the solve path
// transitively read it through one hop.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Wrapped reads the clock through Stamp: two hops for the witness
// chain.
func Wrapped() int64 {
	return Stamp() + 1
}

// Pure never touches the clock; solve-path callers stay clean.
func Pure(x int64) int64 {
	return x * 2
}
