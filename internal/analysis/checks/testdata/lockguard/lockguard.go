// The lockguard fixture exercises the `guarded by <mu>` contract: the
// lock-and-defer and branch-scoped holds pass, unheld accesses and
// closure escapes are flagged, and the ...Locked naming escape hatch
// and annotation validation both fire.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) incDefer() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) racyRead() int {
	return c.n // want `racyRead accesses c\.n, which is guarded by mu, without holding it`
}

func (c *counter) unlockTooSoon() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want `unlockTooSoon accesses c\.n, which is guarded by mu`
}

// branchScoped: a lock taken inside an if-arm does not cover the code
// after it.
func (c *counter) branchScoped(b bool) {
	if b {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	c.n++ // want `branchScoped accesses c\.n, which is guarded by mu`
}

// closureEscapes: a function literal may run on another goroutine after
// the creating frame unlocked, so it starts lock-free.
func (c *counter) closureEscapes() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		c.n++ // want `closureEscapes accesses c\.n, which is guarded by mu`
	}
}

// valueLocked is the documented-by-name helper shape: callers hold
// c.mu.
func (c *counter) valueLocked() int {
	return c.n
}

type rwCounter struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

func (c *rwCounter) read() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.v
}

func (c *rwCounter) racy() int {
	return c.v // want `racy accesses c\.v, which is guarded by mu`
}

// badGuard's annotation names a mutex that does not exist as a sibling
// field: the annotation itself is the finding.
type badGuard struct {
	n int // guarded by lock want "annotated `guarded by lock` but lock is not a sibling sync.Mutex/RWMutex field of badGuard"
}

func useBadGuard(b *badGuard) int {
	return b.n
}
