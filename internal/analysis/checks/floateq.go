package checks

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// FloatEq flags exact ==/!= between floating-point operands in the
// numerical packages (internal/solver, internal/model, internal/core,
// internal/pipeline),
// where two mathematically equal quantities computed along different
// code paths rarely compare equal bit-for-bit. Use floats.Eq or
// floats.EqTol from repro/internal/floats instead.
//
// Comparisons against a constant zero are exempt: the zero value is
// used as an "option not set" sentinel (withDefaults style), and a
// float that was never written is exactly 0.
var FloatEq = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "exact float ==/!= in numerical packages; use repro/internal/floats helpers",
	Run:  runFloatEq,
}

var floatEqPkgs = []string{
	"repro/internal/solver",
	"repro/internal/model",
	"repro/internal/core",
	"repro/internal/pipeline",
}

func floatEqInScope(path string) bool {
	for _, p := range floatEqPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runFloatEq(pass *analysis.Pass) {
	if !floatEqInScope(pass.Path()) {
		return
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(info, bin.X) || !isFloatOperand(info, bin.Y) {
				return true
			}
			if isConstZero(info, bin.X) || isConstZero(info, bin.Y) {
				return true // zero-value sentinel idiom
			}
			pass.Reportf(bin.OpPos,
				"exact float %s comparison; use floats.Eq/floats.EqTol (repro/internal/floats) or an explicit tolerance",
				bin.Op)
			return true
		})
	}
}

func isFloatOperand(info *types.Info, e ast.Expr) bool {
	b := underBasic(info.Types[e].Type)
	return b != nil && b.Info()&types.IsFloat != 0
}

func isConstZero(info *types.Info, e ast.Expr) bool {
	v := info.Types[e].Value
	return v != nil && constant.Sign(constant.ToFloat(v)) == 0
}
