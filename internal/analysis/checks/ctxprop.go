package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// CtxProp enforces context propagation: a function that receives a
// context.Context carries its caller's deadline, cancellation, and the
// attached Obs/Scheduler values, so it must not sever that chain.
// Two severances are flagged inside ctx-receiving functions:
//
//   - calling context.Background() or context.TODO(): a fresh root
//     context silently drops the request deadline and the shared
//     scheduler, which is exactly how an "admission-controlled" solve
//     escapes its bound;
//   - calling the context-free variant F of a module-internal function
//     when the same package exports FContext (the repo's naming
//     convention, e.g. core.Optimize / core.OptimizeContext): the
//     callee will mint its own Background internally.
var CtxProp = &analysis.Analyzer{
	Name: "ctxprop",
	Doc:  "ctx-receiving functions must not call context.Background/TODO or drop ctx when a Context variant exists",
	Run:  runCtxProp,
}

func runCtxProp(pass *analysis.Pass) {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !receivesContext(info, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch {
				case fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO"):
					pass.Reportf(call.Pos(),
						"%s receives a context but calls context.%s; a fresh root drops the caller's deadline and attached values — derive from ctx instead",
						fd.Name.Name, fn.Name())
				case droppedCtxVariant(fn):
					pass.Reportf(call.Pos(),
						"%s receives a context but calls %s.%s, dropping it; use %s.%sContext(ctx, ...)",
						fd.Name.Name, fn.Pkg().Name(), fn.Name(), fn.Pkg().Name(), fn.Name())
				}
				return true
			})
		}
	}
}

// receivesContext reports whether fd declares a context.Context
// parameter (the receiver does not count).
func receivesContext(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if isContextType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// droppedCtxVariant reports whether fn is a module-internal function
// with no Context parameter whose package also exports fn.Name() +
// "Context" taking one.
func droppedCtxVariant(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || !strings.HasPrefix(pkg.Path(), "repro/") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || signatureTakesContext(sig) {
		return false
	}
	variant, ok := pkg.Scope().Lookup(fn.Name() + "Context").(*types.Func)
	if !ok {
		return false
	}
	vsig, ok := variant.Type().(*types.Signature)
	return ok && signatureTakesContext(vsig)
}

func signatureTakesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
