package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// DroppedErr flags expression statements whose call returns an error
// that nobody looks at. In a pipeline whose outputs feed regression
// gates, a silently dropped write error means a truncated manifest or
// event stream that fails much later in tlreport with a confusing
// message — or worse, passes.
//
// Writes that cannot fail are allowlisted: fmt.Print*/Fprint* (the
// conventional "best-effort console output" idiom) and the methods of
// strings.Builder and bytes.Buffer, which are documented to always
// return a nil error. Intentional drops should be written as
// `_ = f()` — an explicit assignment the analyzer does not flag — or
// carry a //tlvet:ignore directive. `defer` and `go` statements are
// out of scope in this version.
var DroppedErr = &analysis.Analyzer{
	Name: "droppederr",
	Doc:  "calls returning an error must not be used as bare statements",
	Run:  runDroppedErr,
}

var errorType = types.Universe.Lookup("error").Type()

func runDroppedErr(pass *analysis.Pass) {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok || !returnsError(info, call) {
				return true
			}
			fn := calleeFunc(info, call)
			if fn != nil && errAllowlisted(fn) {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
				fn != nil && fn.Name() == "Write" && isHashHash(info.Types[sel.X].Type) {
				// hash.Hash embeds io.Writer but documents that Write
				// never returns an error.
				return true
			}
			name := "call"
			if fn != nil {
				name = fn.Name()
			}
			pass.Reportf(call.Pos(),
				"result of %s includes an error that is silently dropped; handle it, assign it to _ explicitly, or add a //tlvet:ignore with a reason",
				name)
			return true
		})
	}
}

// returnsError reports whether any result of call has type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.Types[call.Fun].Type
	sig, ok := t.(*types.Signature)
	if !ok {
		return false // conversion or builtin
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// errAllowlisted reports whether fn is one of the functions whose
// error result is conventionally ignored because it cannot fail (or,
// for console output, because there is nothing useful to do with it).
func errAllowlisted(fn *types.Func) bool {
	full := fn.FullName()
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	return strings.HasPrefix(full, "(*strings.Builder).") ||
		strings.HasPrefix(full, "(*bytes.Buffer).")
}

// isHashHash reports whether t is the hash.Hash interface (or a
// pointer to it).
func isHashHash(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "hash" && obj.Name() == "Hash"
}
