package checks

import (
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// StageDep enforces the optimization pipeline's layering: files in
// repro/internal/pipeline (the staged Enumerate→…→Select engine) may
// only import downward — the numeric and modeling packages listed in
// stageDepAllowed — never the core facade, the experiments driver, or
// a command. An upward import would recreate the cycle the pipeline
// extraction removed (core wraps pipeline, not the reverse) and let
// stage code reach around the facade's caching and event emission.
var StageDep = &analysis.Analyzer{
	Name: "stagedep",
	Doc:  "pipeline stages may only import downward (arch/cache/dataflow/expr/floats/gp/linalg/loopnest/model/obs/solver)",
	Run:  runStageDep,
}

const stageDepPkg = "repro/internal/pipeline"

// stageDepAllowed is the set of module-internal packages the pipeline
// may depend on, each allowed together with its subpackages.
var stageDepAllowed = []string{
	"repro/internal/arch",
	"repro/internal/cache",
	"repro/internal/dataflow",
	"repro/internal/expr",
	"repro/internal/floats",
	"repro/internal/gp",
	"repro/internal/linalg",
	"repro/internal/loopnest",
	"repro/internal/model",
	"repro/internal/obs",
	"repro/internal/solver",
}

func stageDepInScope(path string) bool {
	return path == stageDepPkg || strings.HasPrefix(path, stageDepPkg+"/")
}

func stageDepOK(path string) bool {
	for _, p := range stageDepAllowed {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runStageDep(pass *analysis.Pass) {
	if !stageDepInScope(pass.Path()) {
		return
	}
	for _, file := range pass.Files() {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			// The standard library and the pipeline's own subpackages
			// are always fine; only module-internal imports are layered.
			if !strings.HasPrefix(path, "repro/") || stageDepInScope(path) {
				continue
			}
			if stageDepOK(path) {
				continue
			}
			pass.Reportf(imp.Path.Pos(),
				"pipeline imports %s, which is above it in the layering; stages may only import downward (%s)",
				path, strings.Join(shortNames(stageDepAllowed), "/"))
		}
	}
}

// shortNames strips the repro/internal/ prefix for a compact message.
func shortNames(paths []string) []string {
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = strings.TrimPrefix(p, "repro/internal/")
	}
	return out
}
