package checks

import (
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// StageDep enforces the repository's cross-package layering as a set of
// path-scoped import rules:
//
//   - files in repro/internal/pipeline (the staged Enumerate→…→Select
//     engine) may only import downward — the numeric and modeling
//     packages of its allowlist — never the core facade, the
//     experiments driver, or a command. An upward import would recreate
//     the cycle the pipeline extraction removed (core wraps pipeline,
//     not the reverse) and let stage code reach around the facade's
//     caching and event emission.
//   - files in repro/internal/serve (the thistled HTTP service) may
//     import the optimizer stack it fronts (core, experiments,
//     pipeline, cache, obs, specs, workloads, ...) but not the CLI
//     runtime: the service layer sits beside the commands, below
//     cliutil's flag plumbing.
//   - nothing except the commands (repro/cmd/...) may import
//     repro/internal/serve: the service is a leaf of the internal
//     graph, so no library layer can grow a dependency on HTTP types.
var StageDep = &analysis.Analyzer{
	Name: "stagedep",
	Doc:  "cross-package layering: pipeline and serve import only downward, and only commands import serve",
	Run:  runStageDep,
}

// stageDepRule scopes an import allowlist to one package subtree: files
// whose package path is under Scope may import module-internal packages
// only from Allowed (each with its subpackages) and their own subtree.
type stageDepRule struct {
	Scope   string   // package path the rule applies to (and below)
	Name    string   // how findings name the scoped package
	Allowed []string // permitted module-internal import prefixes
}

var stageDepRules = []stageDepRule{
	{
		Scope: "repro/internal/pipeline",
		Name:  "pipeline",
		Allowed: []string{
			"repro/internal/arch",
			"repro/internal/cache",
			"repro/internal/dataflow",
			"repro/internal/expr",
			"repro/internal/floats",
			"repro/internal/gp",
			"repro/internal/linalg",
			"repro/internal/loopnest",
			"repro/internal/model",
			"repro/internal/obs",
			"repro/internal/solver",
		},
	},
	{
		Scope: "repro/internal/serve",
		Name:  "serve",
		Allowed: []string{
			"repro/internal/arch",
			"repro/internal/cache",
			"repro/internal/core",
			"repro/internal/experiments",
			"repro/internal/loopnest",
			"repro/internal/model",
			"repro/internal/obs",
			"repro/internal/pipeline",
			"repro/internal/specs",
			"repro/internal/workloads",
			"repro/internal/yamlite",
		},
	},
}

// stageDepServePkg is the service package no library layer may import;
// only commands (repro/cmd/...) may depend on it.
const stageDepServePkg = "repro/internal/serve"

func underPath(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

func stageDepAllowed(rule stageDepRule, path string) bool {
	for _, p := range rule.Allowed {
		if underPath(path, p) {
			return true
		}
	}
	return false
}

func runStageDep(pass *analysis.Pass) {
	var rule *stageDepRule
	for i := range stageDepRules {
		if underPath(pass.Path(), stageDepRules[i].Scope) {
			rule = &stageDepRules[i]
			break
		}
	}
	// Outside every scoped subtree the only constraint is the serve
	// leaf rule; commands are exempt from it.
	serveImportOK := (rule != nil && rule.Scope == stageDepServePkg) ||
		strings.HasPrefix(pass.Path(), "repro/cmd/")

	for _, file := range pass.Files() {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			// The standard library is always fine; only module-internal
			// imports are layered.
			if !strings.HasPrefix(path, "repro/") {
				continue
			}
			if underPath(path, stageDepServePkg) && !serveImportOK {
				pass.Reportf(imp.Path.Pos(),
					"%s imports %s; the serve layer is a leaf of the internal graph — only commands (repro/cmd/...) may import it",
					pass.Path(), path)
				continue
			}
			if rule == nil || underPath(path, rule.Scope) {
				continue
			}
			if stageDepAllowed(*rule, path) {
				continue
			}
			pass.Reportf(imp.Path.Pos(),
				"%s imports %s, which is above it in the layering; %s may only import downward (%s)",
				rule.Name, path, rule.Name, strings.Join(shortNames(rule.Allowed), "/"))
		}
	}
}

// shortNames strips the repro/internal/ prefix for a compact message.
func shortNames(paths []string) []string {
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = strings.TrimPrefix(p, "repro/internal/")
	}
	return out
}
