package checks

import (
	"go/ast"
	"go/constant"

	"repro/internal/analysis"
)

// PosyCoef rejects compile-time-constant non-positive coefficients
// flowing into the posynomial constructors of internal/expr and the
// bound helpers of internal/gp. Geometric programming is only convex
// for positive coefficients; a negative or zero literal here is always
// a bug the solver would otherwise surface much later as
// ErrNotPosynomial (or, worse, as log(0) during lowering).
//
// Only constants are checked: computed coefficients (e.g. the negated
// extents the dataflow relaxation handles explicitly via
// DropNegativeConstants) are runtime values the analyzer cannot judge.
var PosyCoef = &analysis.Analyzer{
	Name: "posycoef",
	Doc:  "literal coefficients passed to posynomial constructors must be positive",
	Run:  runPosyCoef,
}

// coefRule identifies which argument of a constructor is the
// coefficient and whether zero is tolerated (expr.PolyConst(0) is the
// documented empty posynomial).
type coefRule struct {
	arg       int
	allowZero bool
}

var coefRules = map[string]coefRule{
	"repro/internal/expr.Mono":                   {arg: 0},
	"repro/internal/expr.MonoPow":                {arg: 0},
	"repro/internal/expr.Const":                  {arg: 0},
	"repro/internal/expr.PolyConst":              {arg: 0, allowZero: true},
	"(*repro/internal/gp.Program).AddUpperBound": {arg: 2},
	"(*repro/internal/gp.Program).AddLowerBound": {arg: 2},
}

func runPosyCoef(pass *analysis.Pass) {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			rule, ok := coefRules[fn.FullName()]
			if !ok || rule.arg >= len(call.Args) {
				return true
			}
			arg := call.Args[rule.arg]
			tv := info.Types[arg]
			if tv.Value == nil {
				return true // runtime value — out of static reach
			}
			val, _ := constant.Float64Val(constant.ToFloat(tv.Value))
			if val < 0 || (val == 0 && !rule.allowZero) {
				pass.Reportf(arg.Pos(),
					"%s coefficient must be positive (posynomials are only convex in log space for positive coefficients); got %v",
					fn.Name(), tv.Value)
			}
			return true
		})
	}
}
