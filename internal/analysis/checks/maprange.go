package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// MapRange flags map iteration whose per-iteration values escape into
// ordered output: Go's map iteration order is deliberately randomized,
// so a range over a map that feeds an Emit call, a serialization
// encoder, printed output, or a slice append without a later sort makes
// every emitted artifact — event streams, manifests, traces — differ
// run to run. The repo's regression gates diff those artifacts byte for
// byte; one unsorted map range upstream of them is a flaky gate.
//
// Three sinks are checked inside the loop body, each only when the
// tainted expression mentions the range's key or value variable:
//
//   - calls to a method named Emit or Encode (event emission, JSON
//     encoders);
//   - fmt printing functions (Print/Fprint/Sprint families);
//   - append to a slice declared outside the loop, unless the slice is
//     later passed to a sort.* or slices.* call in the same function
//     ("intervening sort" — collect-then-sort is the sanctioned idiom).
//
// Commutative uses (summing values, building another map, counting) do
// not hit a sink and pass untouched.
var MapRange = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "map iteration must not feed Emit/serialization/printing or unsorted slice appends",
	Run:  runMapRange,
}

func runMapRange(pass *analysis.Pass) {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := info.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fd, rng)
				return true
			})
		}
	}
}

func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.TypesInfo()

	// The loop variables whose values carry iteration order.
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	if len(loopVars) == 0 {
		return // bare `for range m` carries no per-iteration data
	}
	tainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	anyTainted := func(es []ast.Expr) bool {
		for _, e := range es {
			if tainted(e) {
				return true
			}
		}
		return false
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			switch {
			case (fn.Name() == "Emit" || fn.Name() == "Encode") && anyTainted(n.Args):
				pass.Reportf(n.Pos(),
					"%s iterates a map and passes iteration-dependent values to %s; map order is randomized — collect and sort first",
					fd.Name.Name, fn.Name())
			case isFmtPrinter(fn) && anyTainted(n.Args):
				pass.Reportf(n.Pos(),
					"%s prints values inside a map range via fmt.%s; output order is randomized — collect and sort first",
					fd.Name.Name, fn.Name())
			}
		case *ast.AssignStmt:
			checkMapRangeAppend(pass, fd, rng, n, tainted)
		}
		return true
	})
}

// checkMapRangeAppend flags `s = append(s, <tainted>)` where s is
// declared outside the range loop and never sorted afterwards in the
// same function.
func checkMapRangeAppend(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, as *ast.AssignStmt, tainted func(ast.Expr) bool) {
	info := pass.TypesInfo()
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(as.Lhs) <= i {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			continue // a local function shadowing append
		}
		if !tainted(call) {
			continue
		}
		target, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue // appending into a map element or field: order still unmaterialized
		}
		obj := info.Uses[target]
		if obj == nil {
			obj = info.Defs[target]
		}
		if obj == nil || obj.Pos() >= rng.Pos() {
			continue // slice scoped to the loop body: per-key, order-free
		}
		if sortedAfter(info, fd, rng, obj) {
			continue
		}
		pass.Reportf(as.Pos(),
			"%s appends map-iteration values to %s without a later sort; the slice's order is randomized — sort it (sort.Slice / slices.Sort*) before it escapes",
			fd.Name.Name, target.Name)
	}
}

// sortedAfter reports whether obj is passed to a sort.* or slices.*
// call positioned after the range loop in fd's body.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// isFmtPrinter reports whether fn is one of fmt's printing functions.
func isFmtPrinter(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") ||
			strings.HasPrefix(fn.Name(), "Fprint") ||
			strings.HasPrefix(fn.Name(), "Sprint"))
}
