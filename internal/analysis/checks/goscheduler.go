package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// GoScheduler enforces goroutine discipline in the library layers
// (repro/internal/...): concurrency there must be structured. PR 5
// replaced ad-hoc goroutine pools with the one bounded
// pipeline.Scheduler precisely so total parallelism has a single
// admission bound; a stray `go` statement reintroduces unbounded,
// unaccounted concurrency that neither the scheduler's gauges nor the
// -parallel flag can see.
//
// A `go` statement in internal/ is accepted when it is:
//
//   - part of the Scheduler's own implementation
//     (repro/internal/pipeline, method of *Scheduler), or
//   - scoped by a sync.WaitGroup in the same enclosing function — an
//     Add before the spawn and a Wait on the same WaitGroup object, the
//     structured fan-out/fan-in shape — or
//   - covered by a //tlvet:ignore goscheduler directive whose reason
//     explains the goroutine's lifecycle (long-lived service loops
//     owned by a Close/Drain path are the expected case).
//
// The workspace pool is stricter still: methods of a Workspace type and
// the pool accessors (getWS/putWS) may not spawn at all, WaitGroup or
// not. A workspace is single-owner scratch — handing one to a goroutine
// inside its own methods silently breaks that ownership contract, so
// there is no structured-concurrency exemption there.
//
// Commands (repro/cmd/...) are exempt: main owns its own lifetime.
var GoScheduler = &analysis.Analyzer{
	Name: "goscheduler",
	Doc:  "go statements in internal/ must be Scheduler-internal, WaitGroup-scoped, or carry a reasoned suppression",
	Run:  runGoScheduler,
}

func runGoScheduler(pass *analysis.Pass) {
	if !strings.HasPrefix(pass.Path(), "repro/internal/") {
		return
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if underPath(pass.Path(), "repro/internal/pipeline") && isSchedulerMethod(fd) {
				continue
			}
			pool := isWorkspacePoolFunc(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if pool {
					pass.Reportf(gs.Pos(),
						"%s launches a goroutine inside the workspace pool; workspaces are single-owner scratch and their methods must stay on the caller's goroutine",
						fd.Name.Name)
					return true
				}
				if waitGroupScoped(info, fd, gs) {
					return true
				}
				pass.Reportf(gs.Pos(),
					"%s launches a goroutine outside pipeline.Scheduler and without a WaitGroup scope; route the work through the scheduler, scope it with a sync.WaitGroup, or add a //tlvet:ignore goscheduler with a lifecycle reason",
					fd.Name.Name)
				return true
			})
		}
	}
}

// isWorkspacePoolFunc reports whether fd belongs to the workspace pool:
// a method of a type named Workspace, or one of the pool accessors
// (getWS/putWS) on the pipeline run context. These are the single-owner
// scratch paths where any spawn is a finding.
func isWorkspacePoolFunc(fd *ast.FuncDecl) bool {
	switch fd.Name.Name {
	case "getWS", "putWS":
		return true
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "Workspace"
}

// isSchedulerMethod reports whether fd is a method of
// pipeline.Scheduler.
func isSchedulerMethod(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "Scheduler"
}

// waitGroupScoped reports whether the go statement is covered by the
// structured fan-out shape: some sync.WaitGroup object in fd has an
// Add call positioned before the spawn and a Wait call anywhere in the
// function.
func waitGroupScoped(info *types.Info, fd *ast.FuncDecl, gs *ast.GoStmt) bool {
	addBefore := make(map[types.Object]bool)
	waits := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || !isWaitGroupType(info.TypeOf(sel.X)) {
			return true
		}
		obj := info.Uses[base]
		if obj == nil {
			return true
		}
		switch sel.Sel.Name {
		case "Add":
			if call.Pos() < gs.Pos() {
				addBefore[obj] = true
			}
		case "Wait":
			waits[obj] = true
		}
		return true
	})
	for obj := range addBefore {
		if waits[obj] {
			return true
		}
	}
	return false
}

// isWaitGroupType reports whether t is sync.WaitGroup (or a pointer to
// it).
func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
