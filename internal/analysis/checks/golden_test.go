package checks

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestGolden runs each analyzer over its testdata fixture and checks
// the findings against the fixture's // want assertions. Fixtures are
// loaded under fake import paths so path-scoped analyzers (floateq,
// nilrecv) treat them as the packages they impersonate.
func TestGolden(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		dir      string
		fakePath string
	}{
		{EventFields, "eventfields", "repro/internal/analysis/checks/testdata/eventfields"},
		{PosyCoef, "posycoef", "repro/internal/analysis/checks/testdata/posycoef"},
		{FloatEq, "floateq", "repro/internal/solver/testfixture"},
		{NilRecv, "nilrecv", "repro/internal/obs"},
		{DroppedErr, "droppederr", "repro/internal/analysis/checks/testdata/droppederr"},
		{DroppedErr, "ignore", "repro/internal/analysis/checks/testdata/ignore"},
		{StageDep, "stagedep", "repro/internal/pipeline/testfixture"},
		{StageDep, "servedep", "repro/internal/serve/testfixture"},
		{StageDep, "serveimport", "repro/internal/experiments/testfixture"},
		{WallClock, "wallclock", "repro/internal/solver/testfixture"},
		{WallClock, "wallclockpool", "repro/internal/linalg/testfixture"},
		{MapRange, "maprange", "repro/internal/analysis/checks/testdata/maprange"},
		{LockGuard, "lockguard", "repro/internal/analysis/checks/testdata/lockguard"},
		{CtxProp, "ctxprop", "repro/internal/analysis/checks/testdata/ctxprop"},
		{GoScheduler, "goscheduler", "repro/internal/pipeline/testfixture"},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			pkg, err := analysis.LoadDir("testdata/"+c.dir, c.fakePath)
			if err != nil {
				t.Fatal(err)
			}
			findings := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{c.analyzer}, Names())
			checkWants(t, pkg, findings)
		})
	}
}

// wantRe matches one expectation literal: a double-quoted Go string or
// a backquoted raw string, each holding a regexp.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// parseWants extracts // want assertions from the fixture's comments.
// Grammar: the first occurrence of the word "want" in a comment starts
// the assertion list; every string literal after it is a regexp that
// must match one finding on the comment's line.
func parseWants(pkg *analysis.Package) (map[string][]*regexp.Regexp, error) {
	wants := make(map[string][]*regexp.Regexp) // "file:line" -> expectations
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				_, rest, ok := strings.Cut(c.Text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, lit := range wantRe.FindAllString(rest, -1) {
					pattern := strings.Trim(lit, "`")
					if strings.HasPrefix(lit, `"`) {
						var err error
						pattern, err = strconv.Unquote(lit)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want literal %s: %v", key, lit, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %s: %v", key, lit, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants, nil
}

func checkWants(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	matched := make(map[string][]bool)
	for key, res := range wants {
		matched[key] = make([]bool, len(res))
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.File, f.Line)
		found := false
		for i, re := range wants[key] {
			if !matched[key][i] && re.MatchString(f.Message) {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, res := range wants {
		for i, re := range res {
			if !matched[key][i] {
				t.Errorf("%s: expected finding matching %q, got none", key, re)
			}
		}
	}
}

// TestModuleIsClean runs the full suite over the repository itself and
// requires zero findings: tlvet gating check.sh only works if the tree
// stays self-clean.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	pkgs, err := analysis.LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range analysis.Run(pkgs, All(), Names()) {
		t.Error(f.String())
	}
}
