package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// WallClock enforces the determinism contract of the solve path: the
// staged GP optimization must be a pure function of its inputs, so no
// function in the solver/gp/pipeline/core packages may read the wall
// clock — directly or through anything it calls. A clock read on the
// solve path is exactly the class of bug the byte-identical-manifest
// gates exist to catch, except it only corrupts results under load or
// across machines, where the gates aren't looking.
//
// The observability layer is the sanctioned consumer of time:
// propagation stops at repro/internal/obs (and its subpackages), so
// emitting a span or observing a histogram does not taint the caller.
// Telemetry reads in the solve packages themselves (a time.Now pair
// around a stage to feed a histogram) are real findings — each must
// carry a //tlvet:ignore wallclock directive stating that the value
// feeds observability only, never results.
var WallClock = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "no wall-clock reads reachable from solver/gp/pipeline/core solve paths outside the obs allowlist",
	Run:  runWallClock,
}

// wallClockScope lists the packages whose functions form the solve
// path. linalg joined the list with the workspace refactor: its arena
// buffers (Workspace, the In-place kernel variants) now sit inside the
// Newton loop, so a clock read there is as results-corrupting as one in
// the solver proper.
var wallClockScope = []string{
	"repro/internal/solver",
	"repro/internal/gp",
	"repro/internal/linalg",
	"repro/internal/pipeline",
	"repro/internal/core",
}

// wallClockBarrier lists package prefixes through which the fact does
// not propagate: layers that read time by design and never feed it back
// into results.
var wallClockBarrier = []string{
	"repro/internal/obs",
	"repro/internal/serve",
}

// wallClockFuncs are the time-package functions that read (or depend
// on) the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

func wallClockInScope(path string) bool {
	for _, p := range wallClockScope {
		if underPath(path, p) {
			return true
		}
	}
	return false
}

func wallClockIsBarrier(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	for _, p := range wallClockBarrier {
		if underPath(pkg.Path(), p) {
			return true
		}
	}
	return false
}

// wallClockDirect reports whether a call site reads the wall clock
// itself.
func wallClockDirect(c analysis.CallSite) bool {
	if c.Callee == nil {
		return false
	}
	pkg := c.Callee.Pkg()
	return pkg != nil && pkg.Path() == "time" && wallClockFuncs[c.Callee.Name()]
}

func runWallClock(pass *analysis.Pass) {
	if !wallClockInScope(pass.Path()) {
		return
	}
	reads := pass.Module.Transitive(wallClockDirect, wallClockIsBarrier)

	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo().Defs[fd.Name].(*types.Func)
			node := pass.Module.Funcs[fn]
			if node == nil {
				continue
			}
			for _, c := range node.Calls {
				switch {
				case wallClockDirect(c):
					pass.Reportf(c.Pos,
						"%s reads the wall clock (time.%s) on the solve path; results must be a pure function of inputs — route timing through obs or add a //tlvet:ignore wallclock with a reason",
						fd.Name.Name, c.Callee.Name())
				case c.Callee != nil && !wallClockIsBarrier(c.Callee) &&
					!wallClockCalleeInScope(c.Callee) && reads.Has(c.Callee):
					pass.Reportf(c.Pos,
						"%s calls %s, which transitively reads the wall clock (%s); the solve path must stay clock-free",
						fd.Name.Name, qualifiedName(c.Callee), wallClockChain(reads, c.Callee))
				}
			}
		}
	}
}

// wallClockCalleeInScope reports whether the callee is itself declared
// in a solve-path package: its clock reads are reported at their own
// site, so flagging every in-scope caller too would only repeat the
// finding.
func wallClockCalleeInScope(fn *types.Func) bool {
	pkg := fn.Pkg()
	return pkg != nil && wallClockInScope(pkg.Path())
}

// wallClockChain renders the witness path from fn to the clock read,
// e.g. "loadCfg -> readEnv -> time.Now".
func wallClockChain(f *analysis.Fact, fn *types.Func) string {
	var parts []string
	for _, hop := range f.Why(fn) {
		parts = append(parts, qualifiedName(hop))
	}
	if c, ok := f.Site(fn); ok && c.Callee != nil {
		parts = append(parts, "time."+c.Callee.Name())
	}
	return strings.Join(parts, " -> ")
}

// qualifiedName renders pkgname.Func for diagnostics.
func qualifiedName(fn *types.Func) string {
	if pkg := fn.Pkg(); pkg != nil {
		return pkg.Name() + "." + fn.Name()
	}
	return fn.Name()
}
