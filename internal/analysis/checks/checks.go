// Package checks holds the tlvet analyzers: project-specific semantic
// invariants of the Thistle reproduction that go vet cannot know
// about. Each analyzer is documented on its declaration; the registry
// below is the single source of truth for what cmd/tlvet runs.
package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		CtxProp,
		DroppedErr,
		EventFields,
		FloatEq,
		GoScheduler,
		LockGuard,
		MapRange,
		NilRecv,
		PosyCoef,
		StageDep,
		WallClock,
	}
}

// Names returns the set of analyzer names, for ignore-directive
// validation.
func Names() map[string]bool {
	names := make(map[string]bool)
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// calleeFunc resolves a call's static callee, or nil for calls through
// function values, builtins, and type conversions. It is the
// per-expression twin of the callgraph's analysis.StaticCallee.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	return analysis.StaticCallee(info, call)
}

// underBasic returns the underlying *types.Basic of t, or nil.
func underBasic(t types.Type) *types.Basic {
	if t == nil {
		return nil
	}
	b, _ := t.Underlying().(*types.Basic)
	return b
}
