// Package checks holds the tlvet analyzers: project-specific semantic
// invariants of the Thistle reproduction that go vet cannot know
// about. Each analyzer is documented on its declaration; the registry
// below is the single source of truth for what cmd/tlvet runs.
package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// All returns the full analyzer suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DroppedErr,
		EventFields,
		FloatEq,
		NilRecv,
		PosyCoef,
		StageDep,
	}
}

// Names returns the set of analyzer names, for ignore-directive
// validation.
func Names() map[string]bool {
	names := make(map[string]bool)
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// calleeFunc resolves a call's static callee, or nil for calls through
// function values, builtins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// underBasic returns the underlying *types.Basic of t, or nil.
func underBasic(t types.Type) *types.Basic {
	if t == nil {
		return nil
	}
	b, _ := t.Underlying().(*types.Basic)
	return b
}
