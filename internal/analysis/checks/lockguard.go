package checks

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// LockGuard enforces documented lock discipline: a struct field whose
// comment says `guarded by <mu>` (where <mu> is a sibling sync.Mutex
// or sync.RWMutex field) may only be touched while that mutex is held.
// The check is intra-procedural with a conservative lock-state walk:
//
//   - `x.mu.Lock()` / `x.mu.RLock()` raises the held count for x;
//     `Unlock()` / `RUnlock()` lowers it; `defer x.mu.Unlock()` keeps
//     the mutex held to the end of the function (the idiomatic
//     lock-and-defer pattern).
//   - branch and loop bodies inherit the entry state but do not leak
//     acquisitions past their own end — a lock taken inside an if-arm
//     does not cover code after the if.
//   - function literals start with no locks held: a closure may run on
//     another goroutine long after the creating frame unlocked.
//
// Two escape hatches exist for call-with-lock-held helpers: a function
// whose name ends in "Locked" is assumed to run under its caller's
// lock, and //tlvet:ignore lockguard covers the genuinely clever cases.
var LockGuard = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated `guarded by <mu>` must only be accessed with that mutex held",
	Run:  runLockGuard,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedStruct records one annotated struct type: guarded field name
// -> mutex field name.
type guardedStruct map[string]string

func runLockGuard(pass *analysis.Pass) {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return
	}
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, guarded: guarded, fn: fd}
			w.stmts(fd.Body.List, make(map[lockKey]int))
		}
	}
}

// collectGuarded parses `guarded by <mu>` field annotations from the
// package's struct declarations, validating that the named mutex is a
// sibling field of mutex type.
func collectGuarded(pass *analysis.Pass) map[*types.Named]guardedStruct {
	info := pass.TypesInfo()
	out := make(map[*types.Named]guardedStruct)
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			named, _ := info.Defs[ts.Name].Type().(*types.Named)
			if named == nil {
				return true
			}
			muFields := make(map[string]bool)
			for _, f := range st.Fields.List {
				if isMutexType(info.TypeOf(f.Type)) {
					for _, name := range f.Names {
						muFields[name.Name] = true
					}
				}
			}
			for _, f := range st.Fields.List {
				mu := guardAnnotation(f)
				if mu == "" {
					continue
				}
				if !muFields[mu] {
					pass.Reportf(f.Pos(),
						"field is annotated `guarded by %s` but %s is not a sibling sync.Mutex/RWMutex field of %s",
						mu, mu, ts.Name.Name)
					continue
				}
				gs := out[named]
				if gs == nil {
					gs = make(guardedStruct)
					out[named] = gs
				}
				for _, name := range f.Names {
					gs[name.Name] = mu
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment.
func guardAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (or a
// pointer to one).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockKey identifies one mutex instance intra-procedurally: the base
// object (receiver or local variable) plus the mutex field name.
type lockKey struct {
	base types.Object
	mu   string
}

// lockWalker walks one function body in source order, tracking which
// mutexes are held.
type lockWalker struct {
	pass    *analysis.Pass
	guarded map[*types.Named]guardedStruct
	fn      *ast.FuncDecl
}

func (w *lockWalker) stmts(list []ast.Stmt, held map[lockKey]int) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

// branch walks nested statements with a copy of the lock state, so
// acquisitions inside do not leak out.
func (w *lockWalker) branch(list []ast.Stmt, held map[lockKey]int) {
	copied := make(map[lockKey]int, len(held))
	for k, v := range held {
		copied[k] = v
	}
	w.stmts(list, copied)
}

func (w *lockWalker) stmt(s ast.Stmt, held map[lockKey]int) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.branch(s.List, held)
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		w.branch(s.Body.List, held)
		w.stmt(s.Else, held)
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		w.expr(s.Cond, held)
		body := make([]ast.Stmt, 0, len(s.Body.List)+1)
		body = append(body, s.Body.List...)
		if s.Post != nil {
			body = append(body, s.Post)
		}
		w.branch(body, held)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.branch(s.Body.List, held)
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		w.expr(s.Tag, held)
		w.branch(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		w.branch(s.Body.List, held)
	case *ast.SelectStmt:
		w.branch(s.Body.List, held)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e, held)
		}
		w.branch(s.Body, held)
	case *ast.CommClause:
		w.stmt(s.Comm, held)
		w.branch(s.Body, held)
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the mutex held to function end.
		// Other deferred calls: arguments are evaluated now (under the
		// current state); a deferred func literal body starts lock-free
		// via the FuncLit case.
		if _, op, ok := w.lockOp(s.Call); ok && op < 0 {
			return // the unlock is deferred: leave held untouched
		}
		w.expr(s.Call, held)
	case *ast.GoStmt:
		// Arguments are evaluated on this goroutine under the current
		// state; the spawned literal's body starts lock-free.
		w.expr(s.Call, held)
	case *ast.ExprStmt:
		w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	}
}

// expr checks one expression under the current lock state, updating it
// for Lock/Unlock calls. held == nil means "walk with no locks and no
// state updates" (defer/go bodies).
func (w *lockWalker) expr(e ast.Expr, held map[lockKey]int) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures start lock-free: they may run on another
			// goroutine after the creating frame released everything.
			w.stmts(n.Body.List, make(map[lockKey]int))
			return false
		case *ast.CallExpr:
			if key, op, ok := w.lockOp(n); ok {
				if held != nil {
					held[key] += op
				}
				return false // don't treat x.mu as a field access
			}
		case *ast.SelectorExpr:
			w.checkAccess(n, held)
		}
		return true
	})
}

// lockOp recognizes x.mu.Lock/RLock (+1) and x.mu.Unlock/RUnlock (-1)
// calls, returning the mutex's intra-procedural identity.
func (w *lockWalker) lockOp(call *ast.CallExpr) (lockKey, int, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	var op int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = 1
	case "Unlock", "RUnlock":
		op = -1
	default:
		return lockKey{}, 0, false
	}
	// The receiver must be a mutex-typed selector base.mu or a plain
	// mutex variable.
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if !isMutexType(w.pass.TypesInfo().TypeOf(recv)) {
			return lockKey{}, 0, false
		}
		if base, ok := ast.Unparen(recv.X).(*ast.Ident); ok {
			return lockKey{w.pass.TypesInfo().Uses[base], recv.Sel.Name}, op, true
		}
	case *ast.Ident:
		if !isMutexType(w.pass.TypesInfo().TypeOf(recv)) {
			return lockKey{}, 0, false
		}
		// A plain local/package-level mutex: identified by its object,
		// with no field name.
		return lockKey{w.pass.TypesInfo().Uses[recv], ""}, op, true
	}
	return lockKey{}, 0, false
}

// checkAccess reports sel when it reads or writes a guarded field
// while the guarding mutex is not known to be held.
func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, held map[lockKey]int) {
	info := w.pass.TypesInfo()
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	named := namedRecv(s.Recv())
	if named == nil {
		return
	}
	gs := w.guarded[named]
	mu, guarded := gs[sel.Sel.Name]
	if !guarded {
		return
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return // chained access (a.b.c): base identity unknown, skip
	}
	key := lockKey{info.Uses[base], mu}
	if held != nil && held[key] > 0 {
		return
	}
	if endsWithLocked(w.fn.Name.Name) {
		return // helper documented-by-name to run under the caller's lock
	}
	w.pass.Reportf(sel.Sel.Pos(),
		"%s accesses %s.%s, which is guarded by %s, without holding it; lock %s.%s first (or name the helper ...Locked)",
		w.fn.Name.Name, base.Name, sel.Sel.Name, mu, base.Name, mu)
}

func endsWithLocked(name string) bool {
	const suffix = "Locked"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

// namedRecv unwraps a selection receiver to its *types.Named.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
