// Package analysis is the stdlib-only static-analysis framework behind
// cmd/tlvet. It loads every package in the module with go/parser and
// go/types and runs a suite of Thistle-specific analyzers over the
// typed ASTs — checks that encode invariants go vet cannot know about,
// such as the thistle-events-v1 field schema, the positivity rule for
// posynomial coefficients, or the solve path's wall-clock ban.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// analysis package (Analyzer, Pass, Reportf) so the checks would port
// to the real driver with minimal churn, but it depends only on the
// standard library: packages are typechecked with the gc export-data
// importer for the standard library and a recursive source loader for
// module-internal imports.
//
// Beyond per-package syntax walks, every Pass carries a Module: the
// static callgraph over all loaded packages with one FuncNode summary
// per function declaration. Module.Transitive propagates facts such as
// "reads the wall clock" caller-ward through that graph (stopping at
// analyzer-defined barrier functions) and reconstructs witness chains
// for diagnostics, so flow-aware analyzers (wallclock, goscheduler,
// ctxprop) can reason past the current package's boundary.
//
// Findings can be suppressed with
//
//	//tlvet:ignore <analyzer>[, <analyzer>...] -- <reason>
//
// on the offending line or the line directly above it, or for a whole
// file with //tlvet:ignore-file at any comment position in it. The
// reason is mandatory and the analyzer names must exist; a bare or
// misspelled suppression is itself a finding. The driver additionally
// applies the committed baseline ledger (.tlvet-baseline.json, see
// Baseline): entries absorb known findings for burn-down, and entries
// that no longer match anything are reported as stale. Findings render
// as text, JSON, or SARIF 2.1.0 (BuildSARIF).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named check. Run receives a fully typechecked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name is the identifier used in findings, -only/-skip selectors,
	// and //tlvet:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass)
}

// A Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Module is the cross-package view of the run: every loaded
	// package, the static callgraph over them, and the Transitive fact
	// machinery. Flow-aware analyzers (wallclock, goscheduler) consult
	// it to reason past the current package's boundary.
	Module *Module

	findings *[]Finding
}

// Fset returns the file set all positions in the package resolve
// against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed non-test files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypesInfo returns the package's type information.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// TypesPkg returns the package's *types.Package.
func (p *Pass) TypesPkg() *types.Package { return p.Pkg.Types }

// Path returns the package's import path (e.g. repro/internal/gp).
// Golden-file tests load testdata directories under fake
// module-internal paths so path-scoped analyzers fire on them.
func (p *Pass) Path() string { return p.Pkg.Path }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
	})
}

// A Finding is one analyzer diagnostic.
type Finding struct {
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
}

// String renders the canonical file:line: [analyzer] message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// Run executes analyzers over pkgs, applies //tlvet:ignore suppression,
// and returns the surviving findings sorted by position. knownNames
// must list every analyzer name the tool ships (not just the enabled
// subset) so that -only runs don't misreport ignores of disabled
// analyzers as unknown.
func Run(pkgs []*Package, analyzers []*Analyzer, knownNames map[string]bool) []Finding {
	module := BuildModule(pkgs)
	var out []Finding
	for _, pkg := range pkgs {
		var findings []Finding
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Module: module, findings: &findings}
			a.Run(pass)
		}
		ig := collectIgnores(pkg, knownNames)
		out = append(out, ig.malformed...)
		for _, f := range findings {
			if !ig.suppresses(f) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}
