package codegen_test

import (
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
)

// ExampleGenerate emits the tiled pseudocode of a small matmul mapping
// (paper Fig. 1(d) style).
func ExampleGenerate() {
	prob := loopnest.MatMul(16, 16, 16)
	nest, err := dataflow.StandardNest(prob, dataflow.StandardOptions{})
	if err != nil {
		panic(err)
	}
	m := &model.Mapping{
		Perms: dataflow.StandardPerms([]int{0, 1, 2}, []int{0, 2, 1}),
		Trips: [][]int64{
			{2, 2, 4},
			{2, 2, 2},
			{2, 2, 1},
			{2, 2, 2},
		},
	}
	code, err := codegen.Generate(nest, m, nil, codegen.Options{Indent: "  "})
	if err != nil {
		panic(err)
	}
	// Print just the innermost statement and one copy line.
	for _, line := range strings.Split(code, "\n") {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, "C_reg[...]") || strings.HasPrefix(t, "copy_in(A_reg") {
			fmt.Println(t)
		}
	}
	// Output:
	// copy_in(A_reg, A_sbuf, 8 words);
	// C_reg[...] += A_reg[...] * B_reg[...];
}
