package codegen

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
)

func matmulSetup(t *testing.T) (*dataflow.Nest, *model.Mapping) {
	t.Helper()
	p := loopnest.MatMul(64, 64, 64)
	n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := &model.Mapping{
		// SRAM perm i,k,j (outer→inner), L1 perm i,j,k (paper Fig. 1).
		Perms: dataflow.StandardPerms([]int{0, 1, 2}, []int{0, 2, 1}),
		Trips: [][]int64{
			{4, 4, 4},
			{2, 2, 4},
			{2, 2, 1},
			{4, 4, 4},
		},
	}
	return n, m
}

func TestGenerateMatmulStructure(t *testing.T) {
	n, m := matmulSetup(t)
	a := arch.Eyeriss()
	code, err := Generate(n, m, &a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Buffers with the right sizes: SRAM tiles 16×16 = 256, reg tiles 16.
	for _, want := range []string{
		"buffer A_sbuf[256]", "buffer B_sbuf[256]", "buffer C_sbuf[256]",
		"buffer A_reg[16]", "buffer C_reg[16]",
	} {
		if !strings.Contains(code, want) {
			t.Fatalf("missing %q in:\n%s", want, code)
		}
	}
	// Loop structure: 3 SRAM loops, 2 spatial (p_k = 1 dropped), 3 L1
	// loops, 3 register loops.
	if got := strings.Count(code, "forall"); got != 2 {
		t.Fatalf("forall count = %d, want 2:\n%s", got, code)
	}
	if got := strings.Count(code, "for ("); got != 3+3+3 {
		t.Fatalf("for count = %d, want 9:\n%s", got, code)
	}
	// Braces balance.
	if strings.Count(code, "{") != strings.Count(code, "}") {
		t.Fatalf("unbalanced braces:\n%s", code)
	}
	// MAC statement on register buffers.
	if !strings.Contains(code, "C_reg[...] += A_reg[...] * B_reg[...];") {
		t.Fatalf("missing MAC statement:\n%s", code)
	}
	// Write-backs for the read-write tensor at both boundaries.
	if !strings.Contains(code, "copy_out(C_sbuf, C_reg") ||
		!strings.Contains(code, "copy_out(C, C_sbuf") {
		t.Fatalf("missing write-backs:\n%s", code)
	}
}

// TestGenerateHoisting checks Algorithm 1's hoist points in the emitted
// code: with the SRAM loop order ⟨i, k, j⟩, the copy of A (subscripts
// i, k) hoists above the innermost j loop, i.e. A's copy_in appears
// before the j loop opens (Fig. 1(d) of the paper).
func TestGenerateHoisting(t *testing.T) {
	n, m := matmulSetup(t)
	code, err := Generate(n, m, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Find the SRAM section.
	idx := strings.Index(code, "copies DRAM -> SRAM")
	if idx < 0 {
		t.Fatalf("missing SRAM section:\n%s", code)
	}
	sram := code[idx:]
	aCopy := strings.Index(sram, "copy_in(A_sbuf")
	jLoop := strings.Index(sram, "for (t_j")
	kLoop := strings.Index(sram, "for (t_k")
	if aCopy < 0 || jLoop < 0 || kLoop < 0 {
		t.Fatalf("missing markers:\n%s", sram)
	}
	if !(kLoop < aCopy && aCopy < jLoop) {
		t.Fatalf("A copy not hoisted between k and j loops (k=%d, A=%d, j=%d):\n%s",
			kLoop, aCopy, jLoop, sram)
	}
	// B (subscripts k, j) is present in the innermost loop j: its copy
	// sits inside the j loop.
	bCopy := strings.Index(sram, "copy_in(B_sbuf")
	if bCopy < jLoop {
		t.Fatalf("B copy not inside the j loop:\n%s", sram)
	}
}

func TestGenerateConvWithPinnedKernel(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "c", N: 1, K: 8, C: 8, H: 8, W: 8, R: 3, S: 3,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := dataflow.StandardNest(p, dataflow.StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := model.UniformMapping(n)
	a := arch.Eyeriss()
	code, err := Generate(n, m, &a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The pinned 3×3 kernel loops live inside the register tile.
	if !strings.Contains(code, "for (reg_r = 0; reg_r < 3") ||
		!strings.Contains(code, "for (reg_s = 0; reg_s < 3") {
		t.Fatalf("missing kernel loops:\n%s", code)
	}
	if !strings.Contains(code, "Out_reg[...] += In_reg[...] * Ker_reg[...];") {
		t.Fatalf("missing conv MAC:\n%s", code)
	}
	if strings.Count(code, "{") != strings.Count(code, "}") {
		t.Fatal("unbalanced braces")
	}
}

func TestGenerateRejectsBadMapping(t *testing.T) {
	n, m := matmulSetup(t)
	bad := m.Clone()
	bad.Trips[3][0] = 8 // product now wrong
	if _, err := Generate(n, bad, nil, DefaultOptions()); err == nil {
		t.Fatal("expected trips error")
	}
}

func TestGenerateNoComments(t *testing.T) {
	n, m := matmulSetup(t)
	code, err := Generate(n, m, nil, Options{Indent: "\t"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(code, "//") {
		t.Fatalf("comments should be off:\n%s", code)
	}
	if !strings.Contains(code, "\tfor (") && !strings.Contains(code, "\t") {
		t.Fatal("custom indent not applied")
	}
}
