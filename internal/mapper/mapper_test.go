package mapper

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/loopnest"
	"repro/internal/model"
)

func TestDivisors(t *testing.T) {
	cases := []struct {
		n    int64
		want []int64
	}{
		{1, []int64{1}},
		{12, []int64{1, 2, 3, 4, 6, 12}},
		{17, []int64{1, 17}},
		{64, []int64{1, 2, 4, 8, 16, 32, 64}},
	}
	for _, c := range cases {
		got := Divisors(c.n)
		if len(got) != len(c.want) {
			t.Fatalf("Divisors(%d) = %v", c.n, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Divisors(%d) = %v, want %v", c.n, got, c.want)
			}
		}
	}
}

func TestSearchMatmulFindsValidMapping(t *testing.T) {
	p := loopnest.MatMul(64, 64, 64)
	a := arch.Eyeriss()
	res, err := Search(p, &a, Options{Threads: 2, MaxTrials: 2000, Victory: 500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || !res.Report.Valid() {
		t.Fatalf("invalid best: %+v", res.Report)
	}
	if res.Valid == 0 || res.Trials < res.Valid {
		t.Fatalf("counters wrong: trials=%d valid=%d", res.Trials, res.Valid)
	}
	// Sanity: must beat the sequential uniform mapping on energy.
	if res.Report.EnergyPerMAC > 40 {
		t.Fatalf("pJ/MAC = %v, suspiciously high", res.Report.EnergyPerMAC)
	}
}

func TestSearchConvLayer(t *testing.T) {
	p, err := loopnest.Conv2D(loopnest.Conv2DConfig{
		Name: "res3", N: 1, K: 64, C: 64, H: 56, W: 56, R: 1, S: 1,
		StrideX: 1, StrideY: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Eyeriss()
	res, err := Search(p, &a, Options{Threads: 2, MaxTrials: 1500, Victory: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Valid() {
		t.Fatalf("violations: %v", res.Report.Violations)
	}
	// The paper's Fig. 4 reports the Eyeriss architecture in the
	// 20-30 pJ/MAC band; random search should land in a sane range.
	if res.Report.EnergyPerMAC < 15 || res.Report.EnergyPerMAC > 80 {
		t.Fatalf("pJ/MAC = %v out of sane range", res.Report.EnergyPerMAC)
	}
}

func TestSearchDelayCriterion(t *testing.T) {
	p := loopnest.MatMul(64, 64, 64)
	a := arch.Eyeriss()
	resE, err := Search(p, &a, Options{Criterion: MinEnergy, Threads: 2, MaxTrials: 1500, Victory: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	resD, err := Search(p, &a, Options{Criterion: MinDelay, Threads: 2, MaxTrials: 1500, Victory: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resD.Report.Cycles > resE.Report.Cycles {
		t.Fatalf("delay search (%v cycles) worse than energy search (%v cycles)",
			resD.Report.Cycles, resE.Report.Cycles)
	}
	if resD.Report.IPC <= 1 {
		t.Fatalf("delay-optimized IPC = %v, expected parallel execution", resD.Report.IPC)
	}
}

func TestSearchDeterministicWithSeed(t *testing.T) {
	p := loopnest.MatMul(32, 32, 32)
	a := arch.Eyeriss()
	r1, err := Search(p, &a, Options{Threads: 1, MaxTrials: 500, Victory: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Search(p, &a, Options{Threads: 1, MaxTrials: 500, Victory: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Report.Energy != r2.Report.Energy {
		t.Fatalf("non-deterministic: %v vs %v", r1.Report.Energy, r2.Report.Energy)
	}
}

func TestSearchRespectsPEBudget(t *testing.T) {
	p := loopnest.MatMul(64, 64, 64)
	a := arch.Arch{Name: "small", PEs: 4, Regs: 256, SRAM: 16384, Tech: arch.Tech45nm()}
	res, err := Search(p, &a, Options{Threads: 1, MaxTrials: 1000, Victory: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.PEsUsed > 4 {
		t.Fatalf("PEsUsed = %d > 4", res.Report.PEsUsed)
	}
}

func TestScore(t *testing.T) {
	r := &model.Report{Energy: 10, Cycles: 20}
	if Score(MinEnergy, r) != 10 || Score(MinDelay, r) != 20 {
		t.Fatal("Score wrong")
	}
	if MinEnergy.String() != "energy" || MinDelay.String() != "delay" {
		t.Fatal("Criterion strings")
	}
}
