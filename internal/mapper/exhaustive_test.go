package mapper

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
)

func TestOrderedFactorizations(t *testing.T) {
	fs := orderedFactorizations(8, 2)
	// 8 = 1·8, 2·4, 4·2, 8·1.
	if len(fs) != 4 {
		t.Fatalf("factorizations of 8 into 2 = %d, want 4", len(fs))
	}
	for _, f := range fs {
		if f[0]*f[1] != 8 {
			t.Fatalf("bad factorization %v", f)
		}
	}
	// 12 into 3 factors: Σ over divisors d of count(12/d into 2).
	fs = orderedFactorizations(12, 3)
	for _, f := range fs {
		if f[0]*f[1]*f[2] != 12 {
			t.Fatalf("bad factorization %v", f)
		}
	}
	if len(fs) != 18 {
		t.Fatalf("factorizations of 12 into 3 = %d, want 18", len(fs))
	}
	if got := orderedFactorizations(7, 1); len(got) != 1 || got[0][0] != 7 {
		t.Fatalf("trivial factorization = %v", got)
	}
}

func TestExhaustiveTinyMatmul(t *testing.T) {
	p := loopnest.MatMul(8, 8, 8)
	a := arch.Arch{Name: "tiny", PEs: 16, Regs: 64, SRAM: 512, Tech: arch.Tech45nm()}
	res, err := Exhaustive(p, &a, model.MinEnergy, dataflow.StandardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Valid() {
		t.Fatalf("violations: %v", res.Report.Violations)
	}
	if res.Valid == 0 || res.Trials < res.Valid {
		t.Fatalf("counters: %+v", res)
	}
	t.Logf("exhaustive optimum: %.3f pJ/MAC over %d mappings (%d valid)",
		res.Report.EnergyPerMAC, res.Trials, res.Valid)
	// Random search over the same space can only match, never beat it.
	rs, err := Search(p, &a, Options{Threads: 2, MaxTrials: 2000, Victory: 600, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Report.Energy < res.Report.Energy-1e-6 {
		t.Fatalf("random search %.4f beat the exhaustive optimum %.4f",
			rs.Report.Energy, res.Report.Energy)
	}
}

func TestExhaustiveRejectsHugeSpaces(t *testing.T) {
	p := loopnest.MatMul(1024, 1024, 1024)
	a := arch.Eyeriss()
	if _, err := Exhaustive(p, &a, model.MinEnergy, dataflow.StandardOptions{}); err != ErrTooLarge {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}
