package mapper

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
	"repro/internal/model"
)

// ExhaustiveLimit bounds the number of candidate mappings Exhaustive is
// willing to enumerate; larger spaces return ErrTooLarge.
const ExhaustiveLimit = 20_000_000

// ErrTooLarge reports a search space beyond ExhaustiveLimit.
var ErrTooLarge = fmt.Errorf("mapper: search space exceeds %d mappings", ExhaustiveLimit)

// Exhaustive enumerates the complete mapping space of a problem on an
// architecture — every ordered divisor factorization of every iterator
// across the tiling levels, crossed with every permutation class of both
// copy levels — and returns the true optimum under the criterion. It is
// the ground-truth oracle used to validate the optimizer on small
// problems; the space grows multiplicatively, so it is only feasible for
// tiny extents.
func Exhaustive(p *loopnest.Problem, a *arch.Arch, crit model.Criterion, nestOpts dataflow.StandardOptions) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	nest, err := dataflow.StandardNest(p, nestOpts)
	if err != nil {
		return nil, err
	}
	ev := model.NewEvaluator(nest)
	gen, err := newGenerator(nest, a, nil)
	if err != nil {
		return nil, err
	}

	// Per-iterator: all ordered factorizations across its tileable levels.
	type dimChoice struct {
		levels []int
		trips  [][]int64 // each entry parallel to levels
	}
	var dims []dimChoice
	total := int64(1)
	for it := range p.Iters {
		levels := gen.tiledLevels(it)
		if len(levels) == 0 {
			continue
		}
		fs := orderedFactorizations(gen.free[it], len(levels))
		dims = append(dims, dimChoice{levels: levels, trips: fs})
		total *= int64(len(fs))
		if total > ExhaustiveLimit {
			return nil, ErrTooLarge
		}
	}
	// Permutation classes at the copy levels (deduplicated — members of a
	// class share DV expressions, hence cost).
	classesL1, err := nest.EnumerateClasses(dataflow.StandardLevelL1, nil)
	if err != nil {
		return nil, err
	}
	classesSRAM, err := nest.EnumerateClasses(dataflow.StandardLevelSRAM, nil)
	if err != nil {
		return nil, err
	}
	total *= int64(len(classesL1) * len(classesSRAM))
	if total > ExhaustiveLimit {
		return nil, ErrTooLarge
	}

	base := model.UniformMapping(nest)
	var (
		best    *model.Mapping
		bestRep *model.Report
		trials  int64
		valid   int64
	)
	evalAll := func(m *model.Mapping) {
		for _, c1 := range classesL1 {
			for _, c3 := range classesSRAM {
				m.Perms = dataflow.StandardPerms(c1.Perm, c3.Perm)
				trials++
				rep, err := ev.Evaluate(a, m)
				if err != nil || !rep.Valid() {
					continue
				}
				valid++
				if bestRep == nil || model.Score(crit, rep) < model.Score(crit, bestRep) {
					best, bestRep = m.Clone(), rep
				}
			}
		}
	}
	// Odometer iteration over the per-dimension factorization choices.
	// dims were appended in iterator order, so recover each entry's
	// iterator the same way.
	idx := make([]int, len(dims))
	iterOfDim := make([]int, len(dims))
	di := 0
	for it := range p.Iters {
		if len(gen.tiledLevels(it)) == 0 {
			continue
		}
		iterOfDim[di] = it
		di++
	}
	m := base.Clone()
	for {
		for di, d := range dims {
			f := d.trips[idx[di]]
			for i, li := range d.levels {
				m.Trips[li][iterOfDim[di]] = f[i]
			}
		}
		evalAll(m)
		// Advance odometer.
		k := 0
		for k < len(dims) {
			idx[k]++
			if idx[k] < len(dims[k].trips) {
				break
			}
			idx[k] = 0
			k++
		}
		if k == len(dims) {
			break
		}
	}
	if bestRep == nil {
		return &Result{Trials: trials}, fmt.Errorf("%w after %d mappings", ErrNoMapping, trials)
	}
	return &Result{Mapping: best, Report: bestRep, Trials: trials, Valid: valid}, nil
}

// orderedFactorizations returns every way to write n as an ordered
// product of k positive factors.
func orderedFactorizations(n int64, k int) [][]int64 {
	if k == 1 {
		return [][]int64{{n}}
	}
	var out [][]int64
	for _, d := range Divisors(n) {
		for _, rest := range orderedFactorizations(n/d, k-1) {
			f := append([]int64{d}, rest...)
			out = append(out, f)
		}
	}
	return out
}
