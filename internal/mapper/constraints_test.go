package mapper

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/loopnest"
)

func TestConstraintsEmpty(t *testing.T) {
	var c *Constraints
	if !c.Empty() {
		t.Fatal("nil constraints should be empty")
	}
	if (&Constraints{}).Empty() != true {
		t.Fatal("zero constraints should be empty")
	}
	if c.tripAt(0, 0) != 0 {
		t.Fatal("nil tripAt should be 0")
	}
}

func TestSearchWithFixedSpatialTrips(t *testing.T) {
	p := loopnest.MatMul(64, 64, 64)
	a := arch.Eyeriss()
	// Pin the spatial distribution to 8×8 over i and j.
	cons := &Constraints{FixedTrips: map[int]map[int]int64{
		dataflow.StandardLevelSpatial: {0: 8, 1: 8},
	}}
	res, err := Search(p, &a, Options{
		Threads: 2, MaxTrials: 1500, Victory: 400, Seed: 5, Constraints: cons,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.PEsUsed != 64 {
		t.Fatalf("PEsUsed = %d, want exactly 64", res.Report.PEsUsed)
	}
	if got := res.Mapping.Trips[dataflow.StandardLevelSpatial][0]; got != 8 {
		t.Fatalf("pinned spatial trip = %d", got)
	}
}

func TestSearchWithFixedPermutation(t *testing.T) {
	p := loopnest.MatMul(64, 64, 64)
	a := arch.Eyeriss()
	want := []int{2, 0, 1} // k, i, j outer-to-inner at the SRAM level
	cons := &Constraints{FixedPerms: map[int][]int{
		dataflow.StandardLevelSRAM: want,
	}}
	res, err := Search(p, &a, Options{
		Threads: 1, MaxTrials: 800, Victory: 300, Seed: 9, Constraints: cons,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Mapping.Perms[dataflow.StandardLevelSRAM]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("perm = %v, want %v", got, want)
		}
	}
}

func TestConstraintsValidation(t *testing.T) {
	p := loopnest.MatMul(64, 64, 64)
	a := arch.Eyeriss()
	bad := []*Constraints{
		{FixedTrips: map[int]map[int]int64{9: {0: 2}}},                                   // level out of range
		{FixedTrips: map[int]map[int]int64{0: {9: 2}}},                                   // iter out of range
		{FixedTrips: map[int]map[int]int64{0: {0: 0}}},                                   // trip < 1
		{FixedTrips: map[int]map[int]int64{0: {0: 5}}},                                   // 5 does not divide 64
		{FixedTrips: map[int]map[int]int64{0: {0: 32}, 1: {0: 32}, 2: {0: 32}}},          // product 32768 > 64
		{FixedPerms: map[int][]int{dataflow.StandardLevelSpatial: {0, 1, 2}}},            // not a copy level
		{FixedPerms: map[int][]int{dataflow.StandardLevelSRAM: {0, 1}}},                  // wrong length
		{FixedPerms: map[int][]int{dataflow.StandardLevelSRAM: {0, 0, 1}}},               // duplicate
		{FixedTrips: map[int]map[int]int64{0: {0: 64}, 1: {0: 1}, 2: {0: 1}, 3: {0: 2}}}, // fully pinned, product 128
	}
	for i, c := range bad {
		if _, err := Search(p, &a, Options{Threads: 1, MaxTrials: 10, Constraints: c}); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestConstraintsFullyPinnedOK(t *testing.T) {
	p := loopnest.MatMul(64, 64, 64)
	a := arch.Eyeriss()
	cons := &Constraints{FixedTrips: map[int]map[int]int64{
		0: {0: 4}, 1: {0: 4}, 2: {0: 2}, 3: {0: 2},
	}}
	res, err := Search(p, &a, Options{Threads: 1, MaxTrials: 800, Victory: 300, Seed: 2, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	for li, want := range []int64{4, 4, 2, 2} {
		if got := res.Mapping.Trips[li][0]; got != want {
			t.Fatalf("level %d trip = %d, want %d", li, got, want)
		}
	}
}
