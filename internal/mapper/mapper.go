// Package mapper is the reproduction's substitute for the Timeloop
// Mapper: a multi-threaded randomized search over the mapping space
// (divisor factorizations of every loop extent across the tiling levels,
// times loop permutations at the copy levels), evaluating candidates with
// the analytical model and keeping the best. Threads terminate on either
// a maximum trial count (timeout) or a victory condition — n consecutive
// candidates that fail to improve on the incumbent — mirroring the
// Mapper behaviour described in the paper's Section IV.
package mapper

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/arch"
	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/loopnest"
	"repro/internal/model"
	"repro/internal/obs"
)

// Criterion re-exports model.Criterion for convenience.
type Criterion = model.Criterion

// Re-exported criterion values.
const (
	MinEnergy = model.MinEnergy
	MinDelay  = model.MinDelay
)

// ErrNoMapping is returned when no valid mapping was found within the
// search budget.
var ErrNoMapping = errors.New("mapper: no valid mapping found")

// Options tunes the search. Zero values select defaults.
type Options struct {
	Criterion Criterion
	// Threads is the number of worker goroutines (default 4).
	Threads int
	// MaxTrials bounds candidates per thread (default 20000).
	MaxTrials int
	// Victory stops a thread after this many consecutive non-improving
	// candidates (default 2000).
	Victory int
	// Seed makes the search deterministic (default 1).
	Seed int64
	// Nest customization.
	NestOptions dataflow.StandardOptions
	// Constraints pin parts of the mapping (trip counts, permutations);
	// the search explores only the remaining freedom.
	Constraints *Constraints
	// Obs receives search telemetry: a span per search, per-worker
	// progress gauges, mappings-evaluated counters, and periodic
	// Debug-level progress logs for long runs. Nil disables it all.
	Obs *obs.Obs
	// Span, when tracing, parents the search span. May be nil.
	Span *obs.Span
}

func (o Options) withDefaults() Options {
	if o.Threads == 0 {
		o.Threads = 4
	}
	if o.MaxTrials == 0 {
		o.MaxTrials = 20000
	}
	if o.Victory == 0 {
		o.Victory = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result is the outcome of a search.
type Result struct {
	Mapping *model.Mapping
	Report  *model.Report
	// Trials counts all generated candidates; Valid counts those that
	// satisfied the architecture constraints.
	Trials int64
	Valid  int64
}

// Score extracts the objective value from a report.
func Score(c Criterion, r *model.Report) float64 { return model.Score(c, r) }

// Search runs the randomized mapper for the problem on the architecture.
func Search(p *loopnest.Problem, a *arch.Arch, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := a.Validate(); err != nil {
		return nil, err
	}
	nest, err := dataflow.StandardNest(p, opts.NestOptions)
	if err != nil {
		return nil, err
	}
	ev := model.NewEvaluator(nest)
	gen, err := newGenerator(nest, a, opts.Constraints)
	if err != nil {
		return nil, err
	}

	o := opts.Obs
	span := o.StartSpan(opts.Span, "mapper-search")
	if span != nil {
		span.Annotate(obs.String("problem", p.Name), obs.Int("threads", opts.Threads))
	}
	trialsC := o.Counter("mapper.trials")
	validC := o.Counter("mapper.valid")
	improveC := o.Counter("mapper.improvements")

	var (
		mu      sync.Mutex
		best    *model.Mapping
		bestRep *model.Report
		trials  int64
		valid   int64
	)
	bestScore := func() float64 {
		if bestRep == nil {
			return 0
		}
		return Score(opts.Criterion, bestRep)
	}

	var wg sync.WaitGroup
	for tid := 0; tid < opts.Threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			// Per-worker progress gauge; nil (free) when metrics are off.
			var progress *obs.Gauge
			if o.MetricsEnabled() {
				progress = o.Gauge(fmt.Sprintf("mapper.worker%02d.trials", tid))
			}
			log := o.Logger()
			rng := rand.New(rand.NewSource(opts.Seed + int64(tid)*7919))
			since := 0
			localTrials := int64(0)
			localValid := int64(0)
			for trial := 0; trial < opts.MaxTrials && since < opts.Victory; trial++ {
				localTrials++
				trialsC.Inc()
				progress.Set(localTrials)
				if localTrials%4096 == 0 && log.Enabled(obs.Debug) {
					mu.Lock()
					bs := bestScore()
					mu.Unlock()
					log.Debugf("mapper worker %d: %d/%d trials, %d valid, best %.4g",
						tid, localTrials, opts.MaxTrials, localValid, bs)
				}
				m := gen.random(rng)
				rep, err := ev.Evaluate(a, m)
				if err != nil || !rep.Valid() {
					since++
					continue
				}
				localValid++
				validC.Inc()
				score := Score(opts.Criterion, rep)
				mu.Lock()
				if bestRep == nil || score < bestScore() {
					best, bestRep = m, rep
					since = 0
					improveC.Inc()
				} else {
					since++
				}
				mu.Unlock()
			}
			mu.Lock()
			trials += localTrials
			valid += localValid
			mu.Unlock()
		}(tid)
	}
	wg.Wait()
	if span != nil {
		span.Annotate(obs.Int64("trials", trials), obs.Int64("valid", valid))
		span.End()
	}
	if o.Enabled(obs.Debug) {
		o.Logf(obs.Debug, "mapper: %s done, %d trials, %d valid, best %.4g",
			p.Name, trials, valid, bestScore())
	}

	if bestRep == nil {
		return &Result{Trials: trials}, fmt.Errorf("%w after %d trials", ErrNoMapping, trials)
	}
	return &Result{Mapping: best, Report: bestRep, Trials: trials, Valid: valid}, nil
}

// generator produces random valid-shaped mappings for a standard nest.
type generator struct {
	nest *dataflow.Nest
	a    *arch.Arch
	cons *Constraints
	// divisors[it] are the divisors of each iterator's remaining tileable
	// extent (after pinned factors).
	divisors [][]int64
	free     []int64 // tileable extent per iterator
	base     *model.Mapping
}

func newGenerator(n *dataflow.Nest, a *arch.Arch, cons *Constraints) (*generator, error) {
	g := &generator{nest: n, a: a, cons: cons}
	ni := len(n.Prob.Iters)
	g.free = make([]int64, ni)
	g.divisors = make([][]int64, ni)
	pinned := make([]int64, ni)
	for i := range pinned {
		pinned[i] = 1
	}
	for _, pin := range n.Pins {
		pinned[n.IterOfVar(pin.Var)] *= int64(pin.Value)
	}
	for it, iter := range n.Prob.Iters {
		if iter.Extent%pinned[it] != 0 {
			return nil, fmt.Errorf("mapper: iterator %s extent %d not divisible by pinned %d",
				iter.Name, iter.Extent, pinned[it])
		}
		g.free[it] = iter.Extent / pinned[it]
		g.divisors[it] = Divisors(g.free[it])
	}
	if err := cons.Validate(n, g.free); err != nil {
		return nil, err
	}
	// When every tileable level of an iterator is pinned, the pinned
	// product must cover the whole extent (no free level remains to
	// absorb the rest).
	if !cons.Empty() {
		for it := range n.Prob.Iters {
			prod := int64(1)
			freeLevels := 0
			for _, li := range g.tiledLevels(it) {
				if v := cons.tripAt(li, it); v > 0 {
					prod *= v
				} else {
					freeLevels++
				}
			}
			if freeLevels == 0 && prod != g.free[it] {
				return nil, fmt.Errorf("mapper: iterator %s fully pinned to product %d, want %d",
					n.Prob.Iters[it].Name, prod, g.free[it])
			}
		}
	}
	g.base = model.UniformMapping(n)
	return g, nil
}

// tiledLevels returns the levels at which the iterator may take a free
// (non-pinned) trip, inner to outer.
func (g *generator) tiledLevels(it int) []int {
	var out []int
	pinnedLevels := map[int]bool{}
	for _, pin := range g.nest.Pins {
		if g.nest.IterOfVar(pin.Var) == it {
			pinnedLevels[levelOfTrip(g.nest, pin.Var)] = true
		}
	}
	for li := range g.nest.Levels {
		lvl := &g.nest.Levels[li]
		active := false
		for _, a := range lvl.Active {
			if a == it {
				active = true
			}
		}
		if active && !pinnedLevels[li] {
			out = append(out, li)
		}
	}
	return out
}

func levelOfTrip(n *dataflow.Nest, v expr.VarID) int {
	for li := range n.Levels {
		for _, tv := range n.Levels[li].Trips {
			if tv == v {
				return li
			}
		}
	}
	return -1
}

// random generates one candidate mapping: a random divisor chain per
// iterator (guided to keep the spatial product within the PE budget) and
// random copy-level permutations.
func (g *generator) random(rng *rand.Rand) *model.Mapping {
	m := g.base.Clone()
	peBudget := g.a.PEs
	for it := range g.nest.Prob.Iters {
		levels := g.tiledLevels(it)
		if len(levels) == 0 {
			continue
		}
		rest := g.free[it]
		// Apply pinned trips first; they are not part of the random
		// choice but consume extent (and PE budget at spatial levels).
		freeLevels := levels[:0:0]
		for _, li := range levels {
			if v := g.cons.tripAt(li, it); v > 0 {
				m.Trips[li][it] = v
				rest /= v
				if g.nest.Levels[li].Kind == dataflow.Spatial {
					peBudget /= v
				}
				continue
			}
			freeLevels = append(freeLevels, li)
		}
		for pos, li := range freeLevels {
			if pos == len(freeLevels)-1 {
				m.Trips[li][it] = rest
				break
			}
			var trip int64
			if g.nest.Levels[li].Kind == dataflow.Spatial {
				trip = randomDivisorAtMost(rng, rest, peBudget)
				peBudget /= trip
			} else {
				trip = randomDivisor(rng, rest)
			}
			m.Trips[li][it] = trip
			rest /= trip
		}
	}
	for li := range g.nest.Levels {
		lvl := &g.nest.Levels[li]
		if lvl.Kind == dataflow.Temporal && lvl.Copy {
			if g.cons != nil {
				if fixed, ok := g.cons.FixedPerms[li]; ok {
					m.Perms[li] = append([]int(nil), fixed...)
					continue
				}
			}
			perm := append([]int(nil), lvl.Active...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			m.Perms[li] = perm
		}
	}
	return m
}

// Divisors returns the sorted divisors of n (n ≥ 1). It forwards to
// loopnest.Divisors, the canonical home shared with the optimization
// pipeline.
func Divisors(n int64) []int64 {
	return loopnest.Divisors(n)
}

func randomDivisor(rng *rand.Rand, n int64) int64 {
	ds := Divisors(n)
	return ds[rng.Intn(len(ds))]
}

func randomDivisorAtMost(rng *rand.Rand, n, maxVal int64) int64 {
	ds := Divisors(n)
	hi := 0
	for hi < len(ds) && ds[hi] <= maxVal {
		hi++
	}
	if hi == 0 {
		return 1
	}
	return ds[rng.Intn(hi)]
}
