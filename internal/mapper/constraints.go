package mapper

import (
	"fmt"

	"repro/internal/dataflow"
)

// Constraints restrict the mapping search space, mirroring Timeloop's
// dataflow-constraints specification: individual trip counts and
// copy-level loop permutations can be pinned, and the search explores
// only the remaining freedom.
type Constraints struct {
	// FixedTrips[level][iter] pins a trip count; absent entries are free.
	FixedTrips map[int]map[int]int64
	// FixedPerms[level] pins the outer-to-inner iterator order of a copy
	// level.
	FixedPerms map[int][]int
}

// Empty reports whether no constraints are set.
func (c *Constraints) Empty() bool {
	return c == nil || (len(c.FixedTrips) == 0 && len(c.FixedPerms) == 0)
}

// tripAt returns the pinned trip for (level, iter), or 0 when free.
func (c *Constraints) tripAt(li, it int) int64 {
	if c == nil {
		return 0
	}
	if m, ok := c.FixedTrips[li]; ok {
		return m[it]
	}
	return 0
}

// Validate checks the constraints against a nest: pinned trips must sit
// at levels where the iterator is active, must divide the tileable
// extent, and pinned permutations must match the level's active set.
func (c *Constraints) Validate(n *dataflow.Nest, free []int64) error {
	if c.Empty() {
		return nil
	}
	for li, m := range c.FixedTrips {
		if li < 0 || li >= len(n.Levels) {
			return fmt.Errorf("mapper: constraint level %d out of range", li)
		}
		for it, v := range m {
			if it < 0 || it >= len(n.Prob.Iters) {
				return fmt.Errorf("mapper: constraint iterator %d out of range", it)
			}
			if v < 1 {
				return fmt.Errorf("mapper: constraint trip %d for %s must be ≥ 1", v, n.Prob.Iters[it].Name)
			}
			if n.Levels[li].Trips[it] == -1 && v != 1 {
				return fmt.Errorf("mapper: iterator %s is inactive at level %s", n.Prob.Iters[it].Name, n.Levels[li].Name)
			}
			if free[it]%v != 0 {
				return fmt.Errorf("mapper: trip %d does not divide the tileable extent %d of %s",
					v, free[it], n.Prob.Iters[it].Name)
			}
		}
	}
	// Combined pinned product per iterator must divide the extent.
	for it := range n.Prob.Iters {
		prod := int64(1)
		for li := range n.Levels {
			if v := c.tripAt(li, it); v > 0 {
				prod *= v
			}
		}
		if free[it]%prod != 0 {
			return fmt.Errorf("mapper: pinned trips of %s multiply to %d, which does not divide %d",
				n.Prob.Iters[it].Name, prod, free[it])
		}
	}
	for li, perm := range c.FixedPerms {
		if li < 0 || li >= len(n.Levels) {
			return fmt.Errorf("mapper: permutation constraint level %d out of range", li)
		}
		lvl := &n.Levels[li]
		if lvl.Kind != dataflow.Temporal || !lvl.Copy {
			return fmt.Errorf("mapper: level %s takes no permutation", lvl.Name)
		}
		if len(perm) != len(lvl.Active) {
			return fmt.Errorf("mapper: permutation for level %s must order its %d active iterators",
				lvl.Name, len(lvl.Active))
		}
		seen := map[int]bool{}
		active := map[int]bool{}
		for _, it := range lvl.Active {
			active[it] = true
		}
		for _, it := range perm {
			if !active[it] || seen[it] {
				return fmt.Errorf("mapper: permutation %v is not a permutation of level %s's active set", perm, lvl.Name)
			}
			seen[it] = true
		}
	}
	return nil
}
