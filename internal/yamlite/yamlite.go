// Package yamlite implements the small YAML subset used by
// Timeloop-style specification files (Fig. 3 of the paper): block
// mappings, block sequences (including inline "- key: value" items),
// and plain/quoted scalars, with '#' comments. Anchors, aliases, flow
// collections, multi-line scalars, and multi-document streams are
// deliberately out of scope.
package yamlite

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates node types.
type Kind int

const (
	// Scalar is a leaf string/number/bool.
	Scalar Kind = iota
	// Map is an ordered key → node mapping.
	Map
	// Seq is an ordered list of nodes.
	Seq
)

// ErrParse reports malformed input.
var ErrParse = errors.New("yamlite: parse error")

// ErrType reports a type-mismatched accessor.
var ErrType = errors.New("yamlite: type mismatch")

// Node is one YAML value.
type Node struct {
	Kind  Kind
	Value string // Scalar only
	keys  []string
	vals  map[string]*Node
	Items []*Node // Seq only
}

// NewScalar builds a scalar node.
func NewScalar(v string) *Node { return &Node{Kind: Scalar, Value: v} }

// NewInt builds an integer scalar.
func NewInt(v int64) *Node { return NewScalar(strconv.FormatInt(v, 10)) }

// NewFloat builds a float scalar.
func NewFloat(v float64) *Node { return NewScalar(strconv.FormatFloat(v, 'g', -1, 64)) }

// NewBool builds a boolean scalar.
func NewBool(v bool) *Node { return NewScalar(strconv.FormatBool(v)) }

// NewMap builds an empty mapping.
func NewMap() *Node { return &Node{Kind: Map, vals: map[string]*Node{}} }

// NewSeq builds an empty sequence.
func NewSeq(items ...*Node) *Node { return &Node{Kind: Seq, Items: items} }

// Set inserts or replaces a key (preserving first-insertion order) and
// returns the node for chaining.
func (n *Node) Set(key string, v *Node) *Node {
	if n.Kind != Map {
		panic("yamlite: Set on non-map")
	}
	if _, ok := n.vals[key]; !ok {
		n.keys = append(n.keys, key)
	}
	n.vals[key] = v
	return n
}

// Get returns the value for key, or nil.
func (n *Node) Get(key string) *Node {
	if n == nil || n.Kind != Map {
		return nil
	}
	return n.vals[key]
}

// Keys returns the map keys in insertion order.
func (n *Node) Keys() []string {
	return append([]string(nil), n.keys...)
}

// Append adds an item to a sequence.
func (n *Node) Append(v *Node) *Node {
	if n.Kind != Seq {
		panic("yamlite: Append on non-seq")
	}
	n.Items = append(n.Items, v)
	return n
}

// Str returns the scalar string.
func (n *Node) Str() (string, error) {
	if n == nil || n.Kind != Scalar {
		return "", ErrType
	}
	return n.Value, nil
}

// Int parses the scalar as int64.
func (n *Node) Int() (int64, error) {
	s, err := n.Str()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %q is not an integer", ErrType, s)
	}
	return v, nil
}

// Float parses the scalar as float64.
func (n *Node) Float() (float64, error) {
	s, err := n.Str()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %q is not a number", ErrType, s)
	}
	return v, nil
}

// Bool parses the scalar as bool.
func (n *Node) Bool() (bool, error) {
	s, err := n.Str()
	if err != nil {
		return false, err
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		return false, fmt.Errorf("%w: %q is not a bool", ErrType, s)
	}
	return v, nil
}

// line is one significant input line.
type line struct {
	num     int
	indent  int
	content string
}

// Parse parses a document into its root node.
func Parse(src string) (*Node, error) {
	var lines []line
	for i, raw := range strings.Split(src, "\n") {
		t := stripComment(raw)
		if strings.TrimSpace(t) == "" {
			continue
		}
		trimmed := strings.TrimLeft(t, " ")
		if strings.HasPrefix(trimmed, "\t") {
			return nil, fmt.Errorf("%w: line %d: tabs are not allowed in indentation", ErrParse, i+1)
		}
		lines = append(lines, line{num: i + 1, indent: len(t) - len(trimmed), content: strings.TrimSpace(trimmed)})
	}
	if len(lines) == 0 {
		return NewMap(), nil
	}
	p := &parser{lines: lines}
	node, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, fmt.Errorf("%w: line %d: unexpected content", ErrParse, p.lines[p.pos].num)
	}
	return node, nil
}

// stripComment removes a trailing comment, respecting quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

type parser struct {
	lines []line
	pos   int
}

// peek returns the current line, or nil.
func (p *parser) peek() *line {
	if p.pos >= len(p.lines) {
		return nil
	}
	return &p.lines[p.pos]
}

// parseBlock parses a map or sequence whose items sit at the given indent.
func (p *parser) parseBlock(indent int) (*Node, error) {
	l := p.peek()
	if l == nil {
		return nil, fmt.Errorf("%w: unexpected end of input", ErrParse)
	}
	if strings.HasPrefix(l.content, "- ") || l.content == "-" {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

func (p *parser) parseSeq(indent int) (*Node, error) {
	seq := NewSeq()
	for {
		l := p.peek()
		if l == nil || l.indent != indent || (!strings.HasPrefix(l.content, "- ") && l.content != "-") {
			if l != nil && l.indent > indent {
				return nil, fmt.Errorf("%w: line %d: bad indentation", ErrParse, l.num)
			}
			return seq, nil
		}
		if l.content == "-" {
			p.pos++
			child, err := p.parseDeeper(indent)
			if err != nil {
				return nil, err
			}
			seq.Append(child)
			continue
		}
		rest := strings.TrimSpace(l.content[2:])
		if isMapEntry(rest) {
			// Inline map item: re-interpret the remainder as a virtual
			// line indented past the dash, then continue the map block.
			p.lines[p.pos] = line{num: l.num, indent: indent + 2, content: rest}
			child, err := p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
			seq.Append(child)
			continue
		}
		p.pos++
		seq.Append(NewScalar(unquote(rest)))
	}
}

func (p *parser) parseMap(indent int) (*Node, error) {
	m := NewMap()
	for {
		l := p.peek()
		if l == nil || l.indent != indent || !isMapEntry(l.content) {
			if l != nil && l.indent > indent {
				return nil, fmt.Errorf("%w: line %d: bad indentation", ErrParse, l.num)
			}
			return m, nil
		}
		key, rest, err := splitKey(l.content)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrParse, l.num, err)
		}
		if _, exists := m.vals[key]; exists {
			return nil, fmt.Errorf("%w: line %d: duplicate key %q", ErrParse, l.num, key)
		}
		p.pos++
		if rest != "" {
			m.Set(key, NewScalar(unquote(rest)))
			continue
		}
		next := p.peek()
		if next == nil || next.indent <= indent {
			m.Set(key, NewScalar("")) // empty value
			continue
		}
		child, err := p.parseBlock(next.indent)
		if err != nil {
			return nil, err
		}
		m.Set(key, child)
	}
}

// parseDeeper parses the block nested under the current position, which
// must be indented more than parentIndent.
func (p *parser) parseDeeper(parentIndent int) (*Node, error) {
	l := p.peek()
	if l == nil || l.indent <= parentIndent {
		return NewScalar(""), nil
	}
	return p.parseBlock(l.indent)
}

// isMapEntry reports whether the content looks like "key: ..." with the
// colon outside quotes.
func isMapEntry(s string) bool {
	_, _, err := splitKey(s)
	return err == nil
}

func splitKey(s string) (key, rest string, err error) {
	inS, inD := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case ':':
			if inS || inD {
				continue
			}
			if i+1 == len(s) {
				return unquote(strings.TrimSpace(s[:i])), "", nil
			}
			if s[i+1] == ' ' {
				return unquote(strings.TrimSpace(s[:i])), strings.TrimSpace(s[i+2:]), nil
			}
		}
	}
	return "", "", errors.New("no key separator")
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return s[1 : len(s)-1]
		}
	}
	return s
}

// needsQuote reports whether a scalar must be quoted on output.
func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	return strings.ContainsAny(s, ":#{}[]'\"\n") ||
		strings.HasPrefix(s, "- ") || s != strings.TrimSpace(s)
}

// Encode serializes the node as YAML text.
func Encode(n *Node) string {
	var b strings.Builder
	encode(&b, n, 0, false)
	return b.String()
}

func encode(b *strings.Builder, n *Node, indent int, inline bool) {
	pad := strings.Repeat(" ", indent)
	switch n.Kind {
	case Scalar:
		v := n.Value
		if needsQuote(v) {
			v = "'" + strings.ReplaceAll(v, "'", "''") + "'"
		}
		b.WriteString(v)
		b.WriteByte('\n')
	case Map:
		first := true
		for _, k := range n.keys {
			v := n.vals[k]
			if !(inline && first) {
				b.WriteString(pad)
			}
			first = false
			b.WriteString(k)
			b.WriteString(":")
			switch v.Kind {
			case Scalar:
				b.WriteString(" ")
				encode(b, v, 0, false)
			default:
				b.WriteByte('\n')
				encode(b, v, indent+2, false)
			}
		}
		if len(n.keys) == 0 {
			if !inline {
				b.WriteString(pad)
			}
			b.WriteString("{}\n")
		}
	case Seq:
		for _, it := range n.Items {
			b.WriteString(pad)
			b.WriteString("- ")
			switch it.Kind {
			case Scalar:
				encode(b, it, 0, false)
			case Map:
				encode(b, it, indent+2, true)
			case Seq:
				b.WriteByte('\n')
				encode(b, it, indent+2, false)
			}
		}
		if len(n.Items) == 0 {
			b.WriteString(pad)
			b.WriteString("[]\n")
		}
	}
}

// Equal reports deep equality of two nodes (map key order ignored).
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Scalar:
		return a.Value == b.Value
	case Map:
		if len(a.keys) != len(b.keys) {
			return false
		}
		ak := append([]string(nil), a.keys...)
		bk := append([]string(nil), b.keys...)
		sort.Strings(ak)
		sort.Strings(bk)
		for i := range ak {
			if ak[i] != bk[i] {
				return false
			}
			if !Equal(a.vals[ak[i]], b.vals[ak[i]]) {
				return false
			}
		}
		return true
	case Seq:
		if len(a.Items) != len(b.Items) {
			return false
		}
		for i := range a.Items {
			if !Equal(a.Items[i], b.Items[i]) {
				return false
			}
		}
		return true
	}
	return false
}
