package yamlite_test

import (
	"fmt"

	"repro/internal/yamlite"
)

func ExampleParse() {
	doc := `
mapping:
  - target: DRAM
    type: temporal
    factors: K=4 J=4 I=4
    permutation: J K I
`
	root, err := yamlite.Parse(doc)
	if err != nil {
		panic(err)
	}
	entry := root.Get("mapping").Items[0]
	target, _ := entry.Get("target").Str()
	perm, _ := entry.Get("permutation").Str()
	fmt.Println(target, "|", perm)
	// Output:
	// DRAM | J K I
}

func ExampleEncode() {
	root := yamlite.NewMap()
	root.Set("problem", yamlite.NewMap().
		Set("name", yamlite.NewScalar("matmul")).
		Set("I", yamlite.NewInt(64)))
	fmt.Print(yamlite.Encode(root))
	// Output:
	// problem:
	//   name: matmul
	//   I: 64
}
