package yamlite

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Node {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return n
}

func TestParseScalarsAndTypes(t *testing.T) {
	n := mustParse(t, `
name: ExampleArch
depth: 1024
bw: 8.5
flag: true
quoted: 'a: b'
empty:
`)
	if s, _ := n.Get("name").Str(); s != "ExampleArch" {
		t.Fatalf("name = %q", s)
	}
	if v, _ := n.Get("depth").Int(); v != 1024 {
		t.Fatalf("depth = %d", v)
	}
	if v, _ := n.Get("bw").Float(); v != 8.5 {
		t.Fatalf("bw = %v", v)
	}
	if v, _ := n.Get("flag").Bool(); v != true {
		t.Fatal("flag")
	}
	if s, _ := n.Get("quoted").Str(); s != "a: b" {
		t.Fatalf("quoted = %q", s)
	}
	if s, _ := n.Get("empty").Str(); s != "" {
		t.Fatalf("empty = %q", s)
	}
}

func TestParseNestedMapsAndSeqs(t *testing.T) {
	src := `
architecture:
  version: A.3
  subtree:
    - name: system
      local:
        - attributes:
            depth: 1024
            word-bits: 16
          class: SRAM
          name: SRAM
    - name: chip
mapping:
  - factors: K=4 J=4 I=4
    permutation: J K I
    target: DRAM
  - target: SRAM
`
	n := mustParse(t, src)
	arch := n.Get("architecture")
	if v, _ := arch.Get("version").Str(); v != "A.3" {
		t.Fatalf("version = %q", v)
	}
	sub := arch.Get("subtree")
	if sub.Kind != Seq || len(sub.Items) != 2 {
		t.Fatalf("subtree = %+v", sub)
	}
	local := sub.Items[0].Get("local")
	if local.Kind != Seq || len(local.Items) != 1 {
		t.Fatalf("local = %+v", local)
	}
	if d, _ := local.Items[0].Get("attributes").Get("depth").Int(); d != 1024 {
		t.Fatalf("depth = %d", d)
	}
	if c, _ := local.Items[0].Get("class").Str(); c != "SRAM" {
		t.Fatalf("class = %q", c)
	}
	mp := n.Get("mapping")
	if len(mp.Items) != 2 {
		t.Fatalf("mapping items = %d", len(mp.Items))
	}
	if f, _ := mp.Items[0].Get("factors").Str(); f != "K=4 J=4 I=4" {
		t.Fatalf("factors = %q", f)
	}
}

func TestParseComments(t *testing.T) {
	n := mustParse(t, `
a: 1 # trailing
# full line
b: 'keep # this'
`)
	if v, _ := n.Get("a").Int(); v != 1 {
		t.Fatal("a")
	}
	if s, _ := n.Get("b").Str(); s != "keep # this" {
		t.Fatalf("b = %q", s)
	}
}

func TestParseSeqOfScalars(t *testing.T) {
	n := mustParse(t, `
dims:
  - I
  - J
  - K
`)
	d := n.Get("dims")
	if d.Kind != Seq || len(d.Items) != 3 {
		t.Fatalf("dims = %+v", d)
	}
	if s, _ := d.Items[2].Str(); s != "K" {
		t.Fatalf("dims[2] = %q", s)
	}
}

func TestParseDashAloneItem(t *testing.T) {
	n := mustParse(t, "xs:\n  -\n    a: 1\n  -\n    a: 2\n")
	xs := n.Get("xs")
	if len(xs.Items) != 2 {
		t.Fatalf("items = %d", len(xs.Items))
	}
	if v, _ := xs.Items[1].Get("a").Int(); v != 2 {
		t.Fatal("nested item")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"a: 1\n\tb: 2",    // tab indent
		"a:\n   - x\n  y", // inconsistent
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) should fail", src)
		}
	}
	if _, err := Parse("a: 1\na: 2"); err == nil {
		t.Fatal("duplicate keys should fail")
	}
}

func TestEmptyDocument(t *testing.T) {
	n := mustParse(t, "\n  \n# only comments\n")
	if n.Kind != Map || len(n.Keys()) != 0 {
		t.Fatalf("empty doc = %+v", n)
	}
}

func TestAccessorErrors(t *testing.T) {
	n := mustParse(t, "m:\n  k: v\n")
	if _, err := n.Get("m").Int(); err == nil {
		t.Fatal("Int on map should fail")
	}
	if _, err := n.Get("m").Get("k").Int(); err == nil {
		t.Fatal("Int on non-numeric should fail")
	}
	if _, err := n.Get("m").Get("k").Bool(); err == nil {
		t.Fatal("Bool on non-bool should fail")
	}
	if n.Get("missing") != nil {
		t.Fatal("missing key should be nil")
	}
	if _, err := n.Get("missing").Str(); err == nil {
		t.Fatal("Str on nil should fail")
	}
}

func TestBuildersAndEncode(t *testing.T) {
	root := NewMap()
	root.Set("name", NewScalar("test"))
	root.Set("count", NewInt(42))
	root.Set("ratio", NewFloat(2.5))
	root.Set("on", NewBool(true))
	seq := NewSeq()
	item := NewMap()
	item.Set("target", NewScalar("DRAM"))
	item.Set("factors", NewScalar("K=4 J=4"))
	seq.Append(item)
	seq.Append(NewScalar("plain"))
	root.Set("mapping", seq)

	out := Encode(root)
	back, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if !Equal(root, back) {
		t.Fatalf("round trip mismatch:\n%s", out)
	}
}

func TestEncodeEmptyCollections(t *testing.T) {
	root := NewMap()
	root.Set("emptymap", NewMap())
	root.Set("emptyseq", NewSeq())
	out := Encode(root)
	if !strings.Contains(out, "{}") || !strings.Contains(out, "[]") {
		t.Fatalf("empty encodings missing:\n%s", out)
	}
}

func TestRoundTripRealTimeloopSpec(t *testing.T) {
	// A trimmed version of the paper's Fig. 3(a).
	src := `architecture:
  version: A.3
  subtree:
    - name: system
      local:
        - attributes:
            read_bandwidth: 8
            type: LPDDR4
            word-bits: 16
            write_bandwidth: 8
          class: DRAM
          name: DRAM
      subtree:
        - name: Chip
          local:
            - attributes:
                depth: 1024
                read_bandwidth: 80
                word-bits: 16
                write_bandwidth: 80
              class: SRAM
              name: SRAM
          subtree:
            - name: PE[0..15]
              local:
                - attributes:
                    depth: 64
                    meshX: 4
                  class: regfile
                  name: RegisterFile
                - attributes:
                    datawidth: 16
                    meshX: 4
                  class: intmac
                  name: MACC
`
	n := mustParse(t, src)
	out := Encode(n)
	back := mustParse(t, out)
	if !Equal(n, back) {
		t.Fatalf("round trip mismatch:\n%s", out)
	}
	// Deep access.
	pe := n.Get("architecture").Get("subtree").Items[0].Get("subtree").Items[0].Get("subtree").Items[0]
	if name, _ := pe.Get("name").Str(); name != "PE[0..15]" {
		t.Fatalf("PE name = %q", name)
	}
	if mesh, _ := pe.Get("local").Items[0].Get("attributes").Get("meshX").Int(); mesh != 4 {
		t.Fatalf("meshX = %d", mesh)
	}
}

// Property: Encode∘Parse is the identity on randomly built trees.
func TestQuickRoundTrip(t *testing.T) {
	var build func(depth int, seed uint64) *Node
	build = func(depth int, seed uint64) *Node {
		switch {
		case depth == 0 || seed%3 == 0:
			return NewScalar(scalarFor(seed))
		case seed%3 == 1:
			m := NewMap()
			for i := uint64(0); i < seed%4+1; i++ {
				m.Set(keyFor(seed+i), build(depth-1, seed/3+i*7))
			}
			return m
		default:
			s := NewSeq()
			for i := uint64(0); i < seed%3+1; i++ {
				s.Append(build(depth-1, seed/5+i*13))
			}
			return s
		}
	}
	f := func(seed uint64) bool {
		n := build(3, seed)
		root := NewMap().Set("root", n)
		back, err := Parse(Encode(root))
		if err != nil {
			return false
		}
		return Equal(root, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func scalarFor(seed uint64) string {
	opts := []string{"abc", "1024", "a: b", "x#y", "", "true", "-3.5", "- dash", "K=4 J=4"}
	return opts[seed%uint64(len(opts))]
}

func keyFor(seed uint64) string {
	opts := []string{"name", "class", "attributes", "subtree", "local", "k1", "k2", "k3"}
	return opts[seed%uint64(len(opts))]
}
