// Benchmarks for the thistled service layer: what one request costs
// once the solve itself is out of the picture (served from the shared
// cache), i.e. the HTTP + admission + run-record overhead the daemon
// adds on top of the optimizer. Compare against
// BenchmarkOptimizeWarmCache (the bare warm solve) in bench_test.go.
package repro

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

// BenchmarkServeWarm measures a full request → cached solve → response
// round trip over real HTTP: JSON decode, admission control, the
// per-request run record (recorder, manifest marshal), and the response
// encode, with the solve served from the shared cache. The gap between
// this and BenchmarkOptimizeWarmCache is the service overhead.
func BenchmarkServeWarm(b *testing.B) {
	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const body = `{"layer": "resnet18_L6"}`
	post := func() []byte {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		return data
	}
	post() // prime the shared cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := post()
		if !strings.Contains(string(data), `"from_cache": true`) {
			b.Fatal("warm request missed the cache")
		}
	}
	st := srv.Cache().Stats()
	if st.Misses != 1 {
		b.Fatalf("expected exactly one cold solve, got %d", st.Misses)
	}
}
