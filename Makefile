GO ?= go

.PHONY: all build vet lint lint-sarif test race check bench bench-json trace serve mon

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# tlvet: the project-specific static-analysis suite (cmd/tlvet), gated
# through the committed baseline ledger (.tlvet-baseline.json). Use
# `go run ./cmd/tlvet -list` to see the analyzers.
lint:
	$(GO) run ./cmd/tlvet -baseline .tlvet-baseline.json .

# Same findings as `make lint`, rendered as a SARIF 2.1.0 log and
# validated by scripts/sarifcheck — the artifact code-review tooling
# ingests. Writes /tmp/tlvet.sarif.
lint-sarif:
	$(GO) run ./cmd/tlvet -format sarif . > /tmp/tlvet.sarif
	$(GO) run ./scripts/sarifcheck /tmp/tlvet.sarif

# Short test run (skips the CLI integration tests).
test:
	$(GO) test -short ./...

# Race-detector run over the concurrent packages: the mapper's worker
# pool, core's parallel GP solve loop, the solver telemetry hooks, the
# obs registry itself, and the thistled admission path.
race:
	$(GO) test -race -timeout 30m ./internal/obs/... ./internal/core/... ./internal/mapper/... ./internal/solver/... ./internal/serve/...

check: build vet lint test race
	@echo "check: ok"

# Capture a Chrome trace of a single-layer optimization and print its
# critical-path / queue-wait report. Load /tmp/thistle.trace.json in
# Perfetto (https://ui.perfetto.dev) or chrome://tracing to inspect it.
trace:
	$(GO) run ./cmd/thistle -layer resnet18_L12 -specs=false \
		-trace-out /tmp/thistle.trace.json >/dev/null
	$(GO) run ./cmd/tlreport trace /tmp/thistle.trace.json

# Run the thistled optimization service locally with the shared solve
# cache on. POST /v1/optimize to it; see docs/API.md for the surface
# and docs/OPERATIONS.md for production sizing.
serve:
	$(GO) run ./cmd/thistled -addr localhost:8080 -cache

# Live terminal dashboard against the `make serve` daemon: QPS,
# latency quantiles, queue depth, cache hit rate, SLO burn state.
mon:
	$(GO) run ./cmd/tlmon -addr localhost:8080

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ ./...

# Tier-1 benchmarks recorded as a BENCH_<date>.json trajectory point.
bench-json:
	scripts/bench.sh
