GO ?= go

.PHONY: all build vet lint test race check bench bench-json trace

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# tlvet: the project-specific static-analysis suite (cmd/tlvet). Use
# `go run ./cmd/tlvet -list` to see the analyzers.
lint:
	$(GO) run ./cmd/tlvet .

# Short test run (skips the CLI integration tests).
test:
	$(GO) test -short ./...

# Race-detector run over the concurrent packages: the mapper's worker
# pool, core's parallel GP solve loop, the solver telemetry hooks, and
# the obs registry itself.
race:
	$(GO) test -race -timeout 30m ./internal/obs/... ./internal/core/... ./internal/mapper/... ./internal/solver/...

check: build vet lint test race
	@echo "check: ok"

# Capture a Chrome trace of a single-layer optimization and print its
# critical-path / queue-wait report. Load /tmp/thistle.trace.json in
# Perfetto (https://ui.perfetto.dev) or chrome://tracing to inspect it.
trace:
	$(GO) run ./cmd/thistle -layer resnet18_L12 -specs=false \
		-trace-out /tmp/thistle.trace.json >/dev/null
	$(GO) run ./cmd/tlreport trace /tmp/thistle.trace.json

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ ./...

# Tier-1 benchmarks recorded as a BENCH_<date>.json trajectory point.
bench-json:
	scripts/bench.sh
