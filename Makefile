GO ?= go

.PHONY: all build vet lint test race check bench bench-json

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# tlvet: the project-specific static-analysis suite (cmd/tlvet). Use
# `go run ./cmd/tlvet -list` to see the analyzers.
lint:
	$(GO) run ./cmd/tlvet .

# Short test run (skips the CLI integration tests).
test:
	$(GO) test -short ./...

# Race-detector run over the concurrent packages: the mapper's worker
# pool, core's parallel GP solve loop, the solver telemetry hooks, and
# the obs registry itself.
race:
	$(GO) test -race -timeout 30m ./internal/obs/... ./internal/core/... ./internal/mapper/... ./internal/solver/...

check: build vet lint test race
	@echo "check: ok"

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ ./...

# Tier-1 benchmarks recorded as a BENCH_<date>.json trajectory point.
bench-json:
	scripts/bench.sh
