package repro

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles the repository's command-line tools once per test
// binary into a shared temp dir.
func buildCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"thistle", "tlmapper", "tlmodel", "experiments", "tlreport"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
	}
	return dir
}

// TestCLIEndToEnd drives the full toolchain: thistle optimizes a layer
// and emits a spec bundle; tlmodel re-evaluates the bundle and must
// report the same energy; tlmapper searches the same layer; experiments
// renders the static tables.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	bin := buildCmds(t)
	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// thistle on a small layer with specs and code emission.
	out := run("thistle", "-layer", "resnet18_L12", "-code")
	for _, want := range []string{"pJ/MAC", "--- spec bundle ---", "--- tiled loop nest ---", "copy_in("} {
		if !strings.Contains(out, want) {
			t.Fatalf("thistle output missing %q:\n%s", want, out)
		}
	}
	// Extract the bundle and feed it to tlmodel.
	idx := strings.Index(out, "--- spec bundle ---")
	end := strings.Index(out, "--- tiled loop nest ---")
	bundle := out[idx+len("--- spec bundle ---\n") : end]
	bundlePath := filepath.Join(t.TempDir(), "bundle.yaml")
	if err := os.WriteFile(bundlePath, []byte(bundle), 0o644); err != nil {
		t.Fatal(err)
	}
	mout := run("tlmodel", "-bundle", bundlePath)
	if !strings.Contains(mout, "constraints:   ok") {
		t.Fatalf("tlmodel rejected the thistle design:\n%s", mout)
	}
	// The pJ/MAC figures must agree between the two tools.
	thistlePJ := extractBetween(t, out, "energy:       ", " pJ/MAC")
	modelPJ := extractBetween(t, mout, "pJ (", " pJ/MAC)")
	if thistlePJ != modelPJ {
		t.Fatalf("thistle pJ/MAC %q != tlmodel %q", thistlePJ, modelPJ)
	}

	// tlmapper quick search.
	sout := run("tlmapper", "-layer", "resnet18_L12", "-threads", "2",
		"-trials", "500", "-victory", "200", "-specs")
	if !strings.Contains(sout, "best energy:") || !strings.Contains(sout, "target: DRAM") {
		t.Fatalf("tlmapper output:\n%s", sout)
	}

	// experiments static tables.
	eout := run("experiments", "-exp", "table2,table3")
	if !strings.Contains(eout, "resnet18_L1") || !strings.Contains(eout, "energy_per_MAC_pJ") {
		t.Fatalf("experiments output:\n%s", eout)
	}
}

// TestCLIObservability runs thistle with the full observability flag
// set and checks the trace tree, metrics snapshots, and profiles it
// leaves behind.
func TestCLIObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	bin := buildCmds(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")

	cmd := exec.Command(filepath.Join(bin, "thistle"),
		"-layer", "resnet18_L12", "-specs=false",
		"-v", "debug", "-trace", tracePath, "-metrics",
		"-metrics-json", metricsPath,
		"-cpuprofile", cpuPath, "-memprofile", memPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("thistle with observability flags: %v\n%s", err, out)
	}
	sout := string(out)
	if !strings.Contains(sout, "--- metrics ---") || !strings.Contains(sout, "solver.newton_iters") {
		t.Fatalf("metrics table missing from output:\n%s", sout)
	}
	if !strings.Contains(sout, "DEBUG") {
		t.Fatalf("-v debug produced no DEBUG log lines:\n%s", sout)
	}

	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{
		`"optimize"`, `"rs-placement"`, `"enumerate-classes"`,
		`"gp-solve-pass"`, `"gp-pair"`, `"formulate"`, `"solve"`,
		`"phase-ii"`, `"integerize"`, `"model-eval"`,
	} {
		if !strings.Contains(string(trace), `"name": `+span) {
			t.Errorf("trace missing span %s", span)
		}
	}

	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(metrics, &snap); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, metrics)
	}
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for _, c := range []string{"solver.newton_iters", "solver.solves", "core.pairs_solved", "core.int_candidates"} {
		if counters[c] <= 0 {
			t.Errorf("counter %s = %d, want > 0 (metrics: %s)", c, counters[c], metrics)
		}
	}

	for _, p := range []string{cpuPath, memPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s: %v", p, err)
		} else if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestCLIRunRecords drives the run-record pipeline end to end: thistle
// writes an event stream and manifest, tlreport validates both, a diff
// of two identical runs is clean, and an injected 10% EDP regression is
// flagged with a non-zero exit code.
func TestCLIRunRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	bin := buildCmds(t)
	dir := t.TempDir()
	events := filepath.Join(dir, "run.events.jsonl")
	manA := filepath.Join(dir, "a.manifest.json")
	manB := filepath.Join(dir, "b.manifest.json")

	run := func(wantExit int, name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		out, err := cmd.CombinedOutput()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		if exit != wantExit {
			t.Fatalf("%s %v: exit %d, want %d\n%s", name, args, exit, wantExit, out)
		}
		return string(out)
	}

	layerArgs := []string{"-layer", "resnet18_L12", "-specs=false"}
	run(0, "thistle", append(layerArgs, "-events", events, "-manifest", manA)...)
	run(0, "thistle", append(layerArgs, "-manifest", manB)...)

	// The stream is schema-valid and covers the full run lifecycle.
	vout := run(0, "tlreport", "validate", "-manifest", manA, events)
	for _, want := range []string{"stream ok", "manifest ok", "optimize_end", "solve_end", "centering"} {
		if !strings.Contains(vout, want) {
			t.Fatalf("validate output missing %q:\n%s", want, vout)
		}
	}
	raw, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(string(raw), "\n", 2)[0]
	if !strings.Contains(first, `"schema":"thistle-events-v1"`) || !strings.Contains(first, `"run_start"`) {
		t.Fatalf("stream does not open with a schema-tagged run_start:\n%s", first)
	}

	// show renders the manifest pair as one table.
	sout := run(0, "tlreport", "show", manA, manB)
	if !strings.Contains(sout, "resnet18_L12") || !strings.Contains(sout, "total") {
		t.Fatalf("show output:\n%s", sout)
	}

	// Two identical runs diff clean (wall tolerance loosened: the runs
	// are deterministic in results, not in wall time).
	dout := run(0, "tlreport", "diff", "-wall-tol", "10", manA, manB)
	if !strings.Contains(dout, "0 regression(s)") {
		t.Fatalf("identical runs should diff clean:\n%s", dout)
	}

	// Inject a 10% EDP regression into a copy of B and diff again: the
	// gate must trip with exit code 2.
	var man map[string]any
	rawB, err := os.ReadFile(manB)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawB, &man); err != nil {
		t.Fatal(err)
	}
	for _, l := range man["layers"].([]any) {
		row := l.(map[string]any)
		row["edp"] = row["edp"].(float64) * 1.1
	}
	totals := man["totals"].(map[string]any)
	totals["edp"] = totals["edp"].(float64) * 1.1
	manC := filepath.Join(dir, "c.manifest.json")
	mutated, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manC, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	rout := run(2, "tlreport", "diff", "-wall-tol", "10", manA, manC)
	if !strings.Contains(rout, "REGRESSION") || !strings.Contains(rout, "edp") {
		t.Fatalf("regression diff output:\n%s", rout)
	}

	// A corrupt manifest is skipped with a warning by show, and fails
	// validate's manifest check.
	if err := os.WriteFile(manC, mutated[:len(mutated)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	wout := run(0, "tlreport", "show", manC, manA)
	if !strings.Contains(wout, "warning: ignoring") {
		t.Fatalf("corrupt manifest not warned about:\n%s", wout)
	}
}

// TestCLIErrors exercises the failure paths of the tools.
func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	bin := buildCmds(t)
	fail := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s %v unexpectedly succeeded:\n%s", name, args, out)
		}
		return string(out)
	}
	if out := fail("thistle", "-layer", "nope"); !strings.Contains(out, "unknown layer") {
		t.Fatalf("thistle error output:\n%s", out)
	}
	if out := fail("thistle", "-layer", "resnet18_L2", "-criterion", "watts"); !strings.Contains(out, "unknown criterion") {
		t.Fatalf("thistle criterion error:\n%s", out)
	}
	if out := fail("tlmapper"); !strings.Contains(out, "specify") {
		t.Fatalf("tlmapper error:\n%s", out)
	}
	if out := fail("tlmodel"); !strings.Contains(out, "specify") {
		t.Fatalf("tlmodel error:\n%s", out)
	}
	if out := fail("experiments", "-exp", "fig99"); !strings.Contains(out, "unknown experiment") {
		t.Fatalf("experiments error:\n%s", out)
	}
}

func extractBetween(t *testing.T, s, pre, post string) string {
	t.Helper()
	i := strings.Index(s, pre)
	if i < 0 {
		t.Fatalf("marker %q not found in:\n%s", pre, s)
	}
	rest := s[i+len(pre):]
	j := strings.Index(rest, post)
	if j < 0 {
		t.Fatalf("marker %q not found in:\n%s", post, rest)
	}
	return rest[:j]
}
